package encode

// Flat binary containers (DESIGN.md §13). The gzip+JSON envelope in
// artifact.go is simple and debuggable, but boot and restore pay for
// it: every int32 of a delta table round-trips through decimal JSON,
// and every COWS term through string escaping. The binary container
// keeps the small, irregular metadata as one JSON section and stores
// the big rectangular arrays as raw little-endian int32 sections, so
// a loader mostly copies bytes.
//
// Layout (all little-endian):
//
//	[0:8)    magic  0x89 "PCB" \r \n 0x1a \n   (PNG-style: detects
//	         text-mode mangling and truncation of the first block)
//	[8:12)   uint32 container version
//	[12:16)  uint32 kind (1 = automaton artifact, 2 = checkpoint)
//	[16:20)  uint32 section count
//	[20:24)  uint32 CRC-32 (IEEE) of everything after the header
//	then     count × {uint32 id, uint32 reserved, uint64 offset,
//	         uint64 size} section directory, offsets from file start
//	then     the payload; every section starts 8-byte aligned, so an
//	         mmap'd file can alias int32/int64 sections in place
//
// Unknown section ids are ignored by readers (forward-compatible
// additions); a wrong magic, version, kind, CRC or a section that
// escapes the file fails loudly as ErrArtifactMismatch.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/automaton"
)

// Container kinds.
const (
	KindAutomaton  = uint32(1)
	KindCheckpoint = uint32(2)
)

// BinaryVersion is the container format version.
const BinaryVersion = 1

// binaryMagic opens every flat binary container.
var binaryMagic = [8]byte{0x89, 'P', 'C', 'B', '\r', '\n', 0x1a, '\n'}

// IsBinaryContainer sniffs a file prefix for the container magic, so
// loaders can auto-detect the format before committing to a decoder.
func IsBinaryContainer(prefix []byte) bool {
	return len(prefix) >= len(binaryMagic) && [8]byte(prefix[:8]) == binaryMagic
}

// Section is one directory entry's payload, identified by a
// kind-specific id.
type Section struct {
	ID   uint32
	Data []byte
}

const (
	binHeaderSize   = 24
	binDirEntrySize = 24
	binMaxSections  = 1 << 12
)

// WriteContainer assembles and writes a container of the given kind.
func WriteContainer(w io.Writer, kind uint32, sections []Section) error {
	if len(sections) > binMaxSections {
		return fmt.Errorf("encode: %d sections exceed the container limit", len(sections))
	}
	dirSize := len(sections) * binDirEntrySize
	size := binHeaderSize + dirSize
	offsets := make([]uint64, len(sections))
	for i, s := range sections {
		size = (size + 7) &^ 7 // 8-byte alignment for raw int sections
		offsets[i] = uint64(size)
		size += len(s.Data)
	}
	buf := make([]byte, size)
	copy(buf, binaryMagic[:])
	binary.LittleEndian.PutUint32(buf[8:], BinaryVersion)
	binary.LittleEndian.PutUint32(buf[12:], kind)
	binary.LittleEndian.PutUint32(buf[16:], uint32(len(sections)))
	for i, s := range sections {
		e := buf[binHeaderSize+i*binDirEntrySize:]
		binary.LittleEndian.PutUint32(e, s.ID)
		binary.LittleEndian.PutUint64(e[8:], offsets[i])
		binary.LittleEndian.PutUint64(e[16:], uint64(len(s.Data)))
		copy(buf[offsets[i]:], s.Data)
	}
	binary.LittleEndian.PutUint32(buf[20:], crc32.ChecksumIEEE(buf[binHeaderSize:]))
	_, err := w.Write(buf)
	return err
}

// ReadContainer validates a container image and returns its sections
// by id. The returned slices alias data — callers that mutate must
// copy (the codecs below copy into their own arrays).
func ReadContainer(data []byte, kind uint32) (map[uint32][]byte, error) {
	if len(data) < binHeaderSize || !IsBinaryContainer(data) {
		return nil, fmt.Errorf("%w: not a binary container", ErrArtifactMismatch)
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != BinaryVersion {
		return nil, fmt.Errorf("%w: container version %d, want %d", ErrArtifactMismatch, v, BinaryVersion)
	}
	if k := binary.LittleEndian.Uint32(data[12:]); k != kind {
		return nil, fmt.Errorf("%w: container kind %d, want %d", ErrArtifactMismatch, k, kind)
	}
	count := binary.LittleEndian.Uint32(data[16:])
	if count > binMaxSections {
		return nil, fmt.Errorf("%w: %d sections exceed the container limit", ErrArtifactMismatch, count)
	}
	if crc := binary.LittleEndian.Uint32(data[20:]); crc != crc32.ChecksumIEEE(data[binHeaderSize:]) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrArtifactMismatch)
	}
	dirEnd := binHeaderSize + int(count)*binDirEntrySize
	if dirEnd > len(data) {
		return nil, fmt.Errorf("%w: section directory truncated", ErrArtifactMismatch)
	}
	out := make(map[uint32][]byte, count)
	for i := 0; i < int(count); i++ {
		e := data[binHeaderSize+i*binDirEntrySize:]
		id := binary.LittleEndian.Uint32(e)
		off := binary.LittleEndian.Uint64(e[8:])
		n := binary.LittleEndian.Uint64(e[16:])
		if off < uint64(dirEnd) || off+n < off || off+n > uint64(len(data)) {
			return nil, fmt.Errorf("%w: section %d escapes the file", ErrArtifactMismatch, id)
		}
		out[id] = data[off : off+n]
	}
	return out, nil
}

// Record frames. The container above is a whole-file format: one CRC
// over everything, written once. Append-only logs (internal/wal) need
// the same integrity per record instead, so they can tell a torn tail
// from a corrupted middle. A frame is
//
//	[uint32 payload length][uint32 CRC-32C of payload][payload]
//
// little-endian, CRC-32 Castagnoli (hardware-assisted on amd64/arm64 —
// frames sit on the ingest hot path, where IEEE's table walk would
// cost more than the copy).

// frameCRC is the Castagnoli table used by record frames.
var frameCRC = crc32.MakeTable(crc32.Castagnoli)

// FrameOverhead is the per-record framing cost in bytes.
const FrameOverhead = 8

// ErrFrameTruncated reports a frame that extends past the available
// bytes — the expected shape of a torn tail after a crash, distinct
// from corruption (which is an ErrArtifactMismatch).
var ErrFrameTruncated = errors.New("encode: record frame truncated")

// AppendRecordFrame appends one framed record to dst and returns the
// extended slice. Empty payloads are legal to frame but readers treat
// a zero length as truncation (appenders must not write them; zeroed
// tail bytes would otherwise parse as an endless run of empty records).
func AppendRecordFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, frameCRC))
	return append(dst, payload...)
}

// ReadRecordFrame parses the frame at the start of data. It returns the
// payload (aliasing data) and the total frame size. A frame that runs
// past the end of data — or a zero length, which a torn zero-filled
// tail produces — is ErrFrameTruncated; a complete frame whose CRC does
// not match is corruption and fails as ErrArtifactMismatch.
func ReadRecordFrame(data []byte) (payload []byte, n int, err error) {
	if len(data) < FrameOverhead {
		return nil, 0, ErrFrameTruncated
	}
	size := binary.LittleEndian.Uint32(data)
	if size == 0 {
		return nil, 0, ErrFrameTruncated
	}
	n = FrameOverhead + int(size)
	if uint64(len(data)) < uint64(FrameOverhead)+uint64(size) {
		return nil, 0, ErrFrameTruncated
	}
	payload = data[FrameOverhead:n]
	if crc := binary.LittleEndian.Uint32(data[4:]); crc != crc32.Checksum(payload, frameCRC) {
		return nil, 0, fmt.Errorf("%w: record frame CRC mismatch", ErrArtifactMismatch)
	}
	return payload, n, nil
}

// Int32Section encodes an int32 slice as raw little-endian bytes.
func Int32Section(v []int32) []byte {
	buf := make([]byte, 0, 4*len(v))
	for _, x := range v {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(x))
	}
	return buf
}

// ReadInt32Section decodes a raw little-endian int32 section.
func ReadInt32Section(data []byte) ([]int32, error) {
	if len(data)%4 != 0 {
		return nil, fmt.Errorf("%w: int32 section of %d bytes", ErrArtifactMismatch, len(data))
	}
	out := make([]int32, len(data)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(data[4*i:]))
	}
	return out, nil
}

// StringTableSection encodes strings as a (count+1)-entry uint32
// offset array over a concatenated blob: random access without
// per-string length parsing.
func StringTableSection(v []string) []byte {
	size := 4 * (len(v) + 2)
	for _, s := range v {
		size += len(s)
	}
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v)))
	off := uint32(0)
	for _, s := range v {
		buf = binary.LittleEndian.AppendUint32(buf, off)
		off += uint32(len(s))
	}
	buf = binary.LittleEndian.AppendUint32(buf, off)
	for _, s := range v {
		buf = append(buf, s...)
	}
	return buf
}

// ReadStringTableSection decodes a string-table section.
func ReadStringTableSection(data []byte) ([]string, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("%w: string table truncated", ErrArtifactMismatch)
	}
	count := int(binary.LittleEndian.Uint32(data))
	head := 4 * (count + 2)
	if count < 0 || head > len(data) {
		return nil, fmt.Errorf("%w: string table header escapes section", ErrArtifactMismatch)
	}
	blob := data[head:]
	out := make([]string, count)
	prev := binary.LittleEndian.Uint32(data[4:])
	for i := 0; i < count; i++ {
		next := binary.LittleEndian.Uint32(data[4*(i+2):])
		if next < prev || next > uint32(len(blob)) {
			return nil, fmt.Errorf("%w: string table offsets out of order", ErrArtifactMismatch)
		}
		out[i] = string(blob[prev:next])
		prev = next
	}
	return out, nil
}

// Automaton section ids.
const (
	secAutoMeta          = uint32(1) // JSON: everything small
	secAutoDelta         = uint32(2) // raw int32: transition table
	secAutoSymMap        = uint32(3) // raw int32: alphabet compaction
	secAutoConfigs       = uint32(4) // raw int32 pairs: (term, active)
	secAutoMemberOffsets = uint32(5) // raw int32: per-state offsets, len states+1
	secAutoMembers       = uint32(6) // raw int32: flattened member ids
)

// binStateMeta is State without its Members (which live in the raw
// member sections).
type binStateMeta struct {
	CanComplete bool              `json:"can_complete,omitempty"`
	Expected    []string          `json:"expected,omitempty"`
	ActiveTasks []string          `json:"active_tasks,omitempty"`
	Active      []automaton.Offer `json:"active,omitempty"`
	Fire        []automaton.Offer `json:"fire,omitempty"`
}

// binAutomatonMeta is the JSON metadata section: the DFA minus its
// four big arrays.
type binAutomatonMeta struct {
	Compiler          string                   `json:"compiler"`
	Fingerprint       string                   `json:"fingerprint"`
	Purpose           string                   `json:"purpose"`
	Strict            bool                     `json:"strict"`
	NoAbsorption      bool                     `json:"no_absorption,omitempty"`
	MaxConfigurations int                      `json:"max_configurations"`
	Tasks             []string                 `json:"tasks"`
	TaskRoles         []string                 `json:"task_roles"`
	PoolRoles         []string                 `json:"pool_roles"`
	Classes           []uint64                 `json:"classes"`
	RoleClass         map[string]int32         `json:"role_class"`
	ZeroClass         int32                    `json:"zero_class"`
	Terms             []string                 `json:"terms"`
	Texts             []string                 `json:"texts"`
	ActiveSets        [][]automaton.ActiveTask `json:"active_sets"`
	States            []binStateMeta           `json:"states"`
	Start             int32                    `json:"start"`
	Minimized         bool                     `json:"minimized,omitempty"`
	Columns           int32                    `json:"columns,omitempty"`
}

// WriteAutomatonBinary serializes a compiled automaton as a flat
// binary container.
func WriteAutomatonBinary(w io.Writer, d *automaton.DFA) error {
	meta := binAutomatonMeta{
		Compiler:          d.Compiler,
		Fingerprint:       d.Fingerprint,
		Purpose:           d.Purpose,
		Strict:            d.Strict,
		NoAbsorption:      d.NoAbsorption,
		MaxConfigurations: d.MaxConfigurations,
		Tasks:             d.Tasks,
		TaskRoles:         d.TaskRoles,
		PoolRoles:         d.PoolRoles,
		Classes:           d.Classes,
		RoleClass:         d.RoleClass,
		ZeroClass:         d.ZeroClass,
		Terms:             d.Terms,
		Texts:             d.Texts,
		ActiveSets:        d.ActiveSets,
		Start:             d.Start,
		Minimized:         d.Minimized,
		Columns:           d.Columns,
	}
	offsets := make([]int32, 0, len(d.States)+1)
	var members []int32
	for i := range d.States {
		st := &d.States[i]
		meta.States = append(meta.States, binStateMeta{
			CanComplete: st.CanComplete,
			Expected:    st.Expected,
			ActiveTasks: st.ActiveTasks,
			Active:      st.Active,
			Fire:        st.Fire,
		})
		offsets = append(offsets, int32(len(members)))
		members = append(members, st.Members...)
	}
	offsets = append(offsets, int32(len(members)))
	configs := make([]int32, 0, 2*len(d.Configs))
	for _, c := range d.Configs {
		configs = append(configs, c.Term, c.Active)
	}
	metaJSON, err := json.Marshal(&meta)
	if err != nil {
		return fmt.Errorf("encode automaton meta: %w", err)
	}
	return WriteContainer(w, KindAutomaton, []Section{
		{secAutoMeta, metaJSON},
		{secAutoDelta, Int32Section(d.Delta)},
		{secAutoSymMap, Int32Section(d.SymMap)},
		{secAutoConfigs, Int32Section(configs)},
		{secAutoMemberOffsets, Int32Section(offsets)},
		{secAutoMembers, Int32Section(members)},
	})
}

// ReadAutomatonBinary deserializes a flat binary artifact image and
// validates it exactly as ReadAutomaton does for the JSON envelope.
func ReadAutomatonBinary(data []byte) (*automaton.DFA, error) {
	secs, err := ReadContainer(data, KindAutomaton)
	if err != nil {
		return nil, err
	}
	var meta binAutomatonMeta
	if err := json.Unmarshal(secs[secAutoMeta], &meta); err != nil {
		return nil, fmt.Errorf("%w: meta section: %v", ErrArtifactMismatch, err)
	}
	delta, err := ReadInt32Section(secs[secAutoDelta])
	if err != nil {
		return nil, err
	}
	symMap, err := ReadInt32Section(secs[secAutoSymMap])
	if err != nil {
		return nil, err
	}
	rawConfigs, err := ReadInt32Section(secs[secAutoConfigs])
	if err != nil {
		return nil, err
	}
	offsets, err := ReadInt32Section(secs[secAutoMemberOffsets])
	if err != nil {
		return nil, err
	}
	members, err := ReadInt32Section(secs[secAutoMembers])
	if err != nil {
		return nil, err
	}
	if len(rawConfigs)%2 != 0 {
		return nil, fmt.Errorf("%w: odd config section", ErrArtifactMismatch)
	}
	if len(offsets) != len(meta.States)+1 {
		return nil, fmt.Errorf("%w: %d member offsets for %d states", ErrArtifactMismatch, len(offsets), len(meta.States))
	}
	d := &automaton.DFA{
		Compiler:          meta.Compiler,
		Fingerprint:       meta.Fingerprint,
		Purpose:           meta.Purpose,
		Strict:            meta.Strict,
		NoAbsorption:      meta.NoAbsorption,
		MaxConfigurations: meta.MaxConfigurations,
		Tasks:             meta.Tasks,
		TaskRoles:         meta.TaskRoles,
		PoolRoles:         meta.PoolRoles,
		Classes:           meta.Classes,
		RoleClass:         meta.RoleClass,
		ZeroClass:         meta.ZeroClass,
		Terms:             meta.Terms,
		Texts:             meta.Texts,
		ActiveSets:        meta.ActiveSets,
		Start:             meta.Start,
		Delta:             delta,
		Minimized:         meta.Minimized,
		Columns:           meta.Columns,
	}
	if len(symMap) > 0 {
		d.SymMap = symMap
	}
	d.Configs = make([]automaton.Config, len(rawConfigs)/2)
	for i := range d.Configs {
		d.Configs[i] = automaton.Config{Term: rawConfigs[2*i], Active: rawConfigs[2*i+1]}
	}
	d.States = make([]automaton.State, len(meta.States))
	for i, sm := range meta.States {
		lo, hi := offsets[i], offsets[i+1]
		if lo < 0 || hi < lo || int(hi) > len(members) {
			return nil, fmt.Errorf("%w: state %d member range [%d,%d)", ErrArtifactMismatch, i, lo, hi)
		}
		d.States[i] = automaton.State{
			Members:     members[lo:hi:hi],
			CanComplete: sm.CanComplete,
			Expected:    sm.Expected,
			ActiveTasks: sm.ActiveTasks,
			Active:      sm.Active,
			Fire:        sm.Fire,
		}
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("invalid automaton artifact: %w", err)
	}
	return d, nil
}

// BinaryArtifactPath is the content-addressed location of the flat
// binary automaton artifact inside dir.
func BinaryArtifactPath(dir, fingerprint string) string {
	return filepath.Join(dir, fingerprint+".dfa.bin")
}

// SaveAutomatonBinary writes d into dir as a flat binary artifact
// under its content address (temp + rename, like SaveAutomaton).
func SaveAutomatonBinary(dir string, d *automaton.DFA) (string, error) {
	if d.Fingerprint == "" {
		return "", errors.New("encode: automaton has no fingerprint")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	tmp, err := os.CreateTemp(dir, ".dfa-*")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name())
	if err := WriteAutomatonBinary(tmp, d); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	path := BinaryArtifactPath(dir, d.Fingerprint)
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", err
	}
	return path, nil
}

// loadAutomatonBinary reads and validates the binary artifact file.
func loadAutomatonBinary(path, fingerprint string) (*automaton.DFA, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	d, err := ReadAutomatonBinary(data)
	if err != nil {
		return nil, err
	}
	if d.Fingerprint != fingerprint {
		return nil, fmt.Errorf("%w: loaded fingerprint %.12s, want %.12s",
			ErrArtifactMismatch, d.Fingerprint, fingerprint)
	}
	return d, nil
}
