// Package encode translates BPMN processes into COWS services following
// the paper's Appendix A templates ([16]): every BPMN element becomes a
// distinct COWS service, the process is their parallel composition,
// sequence and message flows are communications between element
// endpoints, gateways resolve their decisions on a private sys name with
// kill-based exclusion, and cycles are supported by replicating every
// re-enterable element.
//
// One extension over the paper's presentation (motivated in DESIGN.md
// §4): token-passing communications carry the set of *origin tasks* that
// produced the token as their single parameter. Tasks replace the origin
// set with themselves, events and gateways propagate it, and joins union
// the sets of their incoming tokens. The compliance layer decodes the
// origins from observable labels to maintain the active-task component
// of its configurations (Definition 6) without any extra
// instrumentation.
//
// Endpoint conventions:
//
//	pool.elemID         the element's trigger endpoint (task labels r·q)
//	pool.joinID-srcID   per-flow inputs of AND joins and paired OR joins
//	pool.plan-joinID    subset announcements from an OR split to its join
//	sys.branchID        a gateway's private branch decision
//	sys.Err             a fallible task's failure (observable)
package encode

import (
	"fmt"
	"sort"

	"repro/internal/bpmn"
	"repro/internal/cows"
	"repro/internal/lts"
)

// Encode returns the COWS service representing one instance (case) of
// the process, per the Appendix A encoding. The service's observable
// labels under Observability(p) are exactly the task executions r·q and
// the sys·Err failures of fallible tasks.
func Encode(p *bpmn.Process) (cows.Service, error) {
	enc := &encoder{p: p}
	var services []cows.Service
	for _, e := range p.Elements() {
		s, err := enc.element(e)
		if err != nil {
			return nil, fmt.Errorf("encode: element %q: %w", e.ID, err)
		}
		services = append(services, s)
	}
	return cows.Parallel(services...), nil
}

// Observability returns the paper's observable-label predicate for the
// process: L = { pool·task } ∪ { sys·Err } (Section 3.5).
func Observability(p *bpmn.Process) lts.Observability {
	return func(l cows.Label) bool {
		if l.Kind != cows.LComm {
			return false
		}
		if l.Op == "Err" {
			return true
		}
		return p.TaskRole(l.Op) == l.Partner
	}
}

// NewSystem builds an LTS system for the process with its canonical
// observability discipline.
func NewSystem(p *bpmn.Process, opts ...lts.Option) *lts.System {
	return lts.NewSystem(Observability(p), opts...)
}

type encoder struct {
	p *bpmn.Process
}

// inputOp computes the operation name on which the target element
// receives a token arriving from source: joins use per-flow endpoints,
// everything else its trigger endpoint.
func (enc *encoder) inputOp(target, source string) string {
	if enc.p.IsANDJoin(target) || enc.p.IsORJoin(target) {
		return target + "-" + source
	}
	return target
}

// invokeFlow builds the invoke activity delivering a token with the
// given origin expression along the flow from source to target.
func (enc *encoder) invokeFlow(source, target string, origin cows.Expr) (*cows.Invoke, error) {
	te := enc.p.Element(target)
	if te == nil {
		return nil, fmt.Errorf("flow target %q missing", target)
	}
	return cows.InvE(te.Pool, enc.inputOp(target, source), origin), nil
}

// nextInvoke builds the token delivery along the element's unique
// outgoing flow.
func (enc *encoder) nextInvoke(e *bpmn.Element, origin cows.Expr) (*cows.Invoke, error) {
	outs := enc.p.Outgoing(e.ID)
	if len(outs) != 1 {
		return nil, fmt.Errorf("expected exactly one outgoing flow, have %d", len(outs))
	}
	return enc.invokeFlow(e.ID, outs[0].To, origin)
}

func (enc *encoder) element(e *bpmn.Element) (cows.Service, error) {
	switch e.Kind {
	case bpmn.KindStart:
		return enc.startEvent(e)
	case bpmn.KindMessageStart:
		return enc.messageStartEvent(e)
	case bpmn.KindEnd:
		return enc.endEvent(e)
	case bpmn.KindMessageEnd:
		return enc.messageEndEvent(e)
	case bpmn.KindTask:
		return enc.task(e)
	case bpmn.KindGatewayXOR:
		return enc.xorGateway(e)
	case bpmn.KindGatewayAND:
		return enc.andGateway(e)
	case bpmn.KindGatewayOR:
		return enc.orGateway(e)
	default:
		return nil, fmt.Errorf("unsupported element kind %v", e.Kind)
	}
}

// startEvent: [[S]] = P.next!<∅>. Fires once per case, so it is not
// replicated; the initial token carries the empty origin set.
func (enc *encoder) startEvent(e *bpmn.Element) (cows.Service, error) {
	inv, err := enc.nextInvoke(e, cows.Lit(cows.EmptySet))
	if err != nil {
		return nil, err
	}
	return inv, nil
}

// messageStartEvent: [[S]] = *[x] P.S?<x>. P.next!<x> — receives the
// message (with the sender's origins) and forwards the token.
func (enc *encoder) messageStartEvent(e *bpmn.Element) (cows.Service, error) {
	inv, err := enc.nextInvoke(e, cows.Var("x"))
	if err != nil {
		return nil, err
	}
	return cows.Replicate(
		cows.NewScope(cows.DeclVar, "x",
			cows.Req(e.Pool, e.ID, []string{"$x"}, inv))), nil
}

// endEvent: [[E]] = *[x] P.E?<x>. 0 — consumes the token.
func (enc *encoder) endEvent(e *bpmn.Element) (cows.Service, error) {
	return cows.Replicate(
		cows.NewScope(cows.DeclVar, "x",
			cows.Req(e.Pool, e.ID, []string{"$x"}, cows.Zero()))), nil
}

// messageEndEvent: [[E]] = *[x] P.E?<x>. Q.M!<x> — forwards the token
// across pools along the message flow.
func (enc *encoder) messageEndEvent(e *bpmn.Element) (cows.Service, error) {
	outs := enc.p.Outgoing(e.ID)
	if len(outs) != 1 || outs[0].Kind != bpmn.FlowMsg {
		return nil, fmt.Errorf("message end needs exactly one outgoing message flow")
	}
	inv, err := enc.invokeFlow(e.ID, outs[0].To, cows.Var("x"))
	if err != nil {
		return nil, err
	}
	return cows.Replicate(
		cows.NewScope(cows.DeclVar, "x",
			cows.Req(e.Pool, e.ID, []string{"$x"}, inv))), nil
}

// task encodes [[T]]. An infallible task forwards the token with itself
// as the new origin:
//
//	*[x] P.T?<x>. P.next!<T>
//
// A fallible task resolves success/failure on a private sys name; the
// failure path performs the observable sys·Err synchronization (carrying
// the task as origin) before routing the token to the error handler:
//
//	*[x] P.T?<x>. [k][sys]( sys.ok!<> | sys.fail!<>
//	    | sys.ok?<>.(kill(k) | {| P.next!<T> |})
//	    | sys.fail?<>.(kill(k) | {| sys.Err!<T> | [e] sys.Err?<e>. P.handler!<T> |}) )
func (enc *encoder) task(e *bpmn.Element) (cows.Service, error) {
	next, err := enc.nextInvoke(e, cows.Lit(e.ID))
	if err != nil {
		return nil, err
	}
	var body cows.Service
	if e.OnError == "" {
		body = next
	} else {
		handler, err := enc.invokeFlow(e.ID, e.OnError, cows.Lit(e.ID))
		if err != nil {
			return nil, err
		}
		errPath := cows.Parallel(
			cows.Inv("sys", "Err", e.ID),
			cows.NewScope(cows.DeclVar, "e",
				cows.Req("sys", "Err", []string{"$e"}, handler)),
		)
		body = cows.NewScope(cows.DeclKill, "k",
			cows.NewScope(cows.DeclName, "sys",
				cows.Parallel(
					cows.Inv("sys", "ok"),
					cows.Inv("sys", "fail"),
					cows.Req("sys", "ok", nil,
						cows.Parallel(cows.KillSig("k"), cows.Protected(next))),
					cows.Req("sys", "fail", nil,
						cows.Parallel(cows.KillSig("k"), cows.Protected(errPath))),
				)))
	}
	return cows.Replicate(
		cows.NewScope(cows.DeclVar, "x",
			cows.Req(e.Pool, e.ID, []string{"$x"}, body))), nil
}

// xorGateway encodes the exclusive gateway per Figure 8: the decision is
// made on a private sys name; choosing a branch kills the alternatives.
// A pure merge (single outgoing flow) degenerates to token pass-through.
func (enc *encoder) xorGateway(e *bpmn.Element) (cows.Service, error) {
	outs := enc.p.Outgoing(e.ID)
	if len(outs) == 1 {
		inv, err := enc.invokeFlow(e.ID, outs[0].To, cows.Var("x"))
		if err != nil {
			return nil, err
		}
		return cows.Replicate(
			cows.NewScope(cows.DeclVar, "x",
				cows.Req(e.Pool, e.ID, []string{"$x"}, inv))), nil
	}
	var kids []cows.Service
	for _, f := range outs {
		kids = append(kids, cows.Inv("sys", f.To))
	}
	for _, f := range outs {
		inv, err := enc.invokeFlow(e.ID, f.To, cows.Var("x"))
		if err != nil {
			return nil, err
		}
		kids = append(kids, cows.Req("sys", f.To, nil,
			cows.Parallel(cows.KillSig("k"), cows.Protected(inv))))
	}
	body := cows.NewScope(cows.DeclKill, "k",
		cows.NewScope(cows.DeclName, "sys", cows.Parallel(kids...)))
	return cows.Replicate(
		cows.NewScope(cows.DeclVar, "x",
			cows.Req(e.Pool, e.ID, []string{"$x"}, body))), nil
}

// andGateway encodes the parallel gateway: a split forwards the token to
// every branch; a join awaits one token per incoming flow on per-flow
// endpoints and forwards the union of their origins.
func (enc *encoder) andGateway(e *bpmn.Element) (cows.Service, error) {
	if enc.p.IsANDJoin(e.ID) {
		return enc.joinBody(e, enc.p.Incoming(e.ID))
	}
	outs := enc.p.Outgoing(e.ID)
	var kids []cows.Service
	for _, f := range outs {
		inv, err := enc.invokeFlow(e.ID, f.To, cows.Var("x"))
		if err != nil {
			return nil, err
		}
		kids = append(kids, inv)
	}
	return cows.Replicate(
		cows.NewScope(cows.DeclVar, "x",
			cows.Req(e.Pool, e.ID, []string{"$x"}, cows.Parallel(kids...)))), nil
}

// joinBody builds the sequential await of one token per given incoming
// flow, forwarding the union of origins. Used by AND joins (all flows)
// and by OR joins (the per-subset flow selections).
func (enc *encoder) joinBody(e *bpmn.Element, flows []bpmn.Flow) (cows.Service, error) {
	if len(flows) == 0 {
		return nil, fmt.Errorf("join %q has no incoming flows", e.ID)
	}
	svc, err := enc.joinAwait(e, flows)
	if err != nil {
		return nil, err
	}
	return cows.Replicate(svc), nil
}

// joinAwait nests the awaits innermost-last and ends with the forward
// invoke.
func (enc *encoder) joinAwait(e *bpmn.Element, flows []bpmn.Flow) (cows.Service, error) {
	vars := make([]cows.Expr, len(flows))
	for i := range flows {
		vars[i] = cows.Var(fmt.Sprintf("x%d", i))
	}
	inv, err := enc.nextInvoke(e, cows.Union(vars...))
	if err != nil {
		return nil, err
	}
	svc := cows.Service(inv)
	for i := len(flows) - 1; i >= 0; i-- {
		v := fmt.Sprintf("x%d", i)
		svc = cows.NewScope(cows.DeclVar, v,
			cows.Req(e.Pool, e.ID+"-"+flows[i].From, []string{"$" + v}, svc))
	}
	return svc, nil
}

// orGateway encodes the inclusive gateway. A split chooses a non-empty
// subset of its branches on the private sys name (kill-exclusive, like
// XOR but over subsets), forwards the token to each chosen branch, and —
// when paired with a join — announces the chosen subset on the join's
// plan endpoint. The join is a replicated choice over plan values; each
// branch awaits exactly the announced subset's tokens.
//
// The plan announcement is a handshake: the split emits only the plan,
// the join acknowledges on the split's ack endpoint, and the branch
// tokens are emitted only after the acknowledgment. Without the
// handshake the plan delivery would race the branch tokens through the
// silent fragment of the LTS, splitting every WeakNext state in two
// (plan-delivered vs plan-in-flight); with it, the visited transition
// system matches the paper's Figure 6 exactly (five successors at St7).
func (enc *encoder) orGateway(e *bpmn.Element) (cows.Service, error) {
	if enc.p.IsORJoin(e.ID) {
		return enc.orJoin(e)
	}
	outs := enc.p.Outgoing(e.ID)
	m := len(outs)
	if m < 2 {
		return nil, fmt.Errorf("inclusive split %q has %d branches", e.ID, m)
	}
	join := enc.p.ORJoin(e.ID)
	var joinPool string
	if join != "" {
		joinPool = enc.p.Element(join).Pool
	}

	var kids []cows.Service
	for mask := 1; mask < (1 << m); mask++ {
		kids = append(kids, cows.Inv("sys", subsetOp(mask)))
	}
	for mask := 1; mask < (1 << m); mask++ {
		var tokens []cows.Service
		for i, f := range outs {
			if mask&(1<<i) == 0 {
				continue
			}
			inv, err := enc.invokeFlow(e.ID, f.To, cows.Var("x"))
			if err != nil {
				return nil, err
			}
			tokens = append(tokens, inv)
		}
		payload := cows.Parallel(tokens...)
		if join != "" {
			payload = cows.Parallel(
				cows.InvE(joinPool, "plan-"+join, planValue(e.ID, mask)),
				cows.Req(e.Pool, "ack-"+e.ID, nil, cows.Parallel(tokens...)),
			)
		}
		kids = append(kids, cows.Req("sys", subsetOp(mask), nil,
			cows.Parallel(cows.KillSig("k"), cows.Protected(payload))))
	}
	body := cows.NewScope(cows.DeclKill, "k",
		cows.NewScope(cows.DeclName, "sys", cows.Parallel(kids...)))
	return cows.Replicate(
		cows.NewScope(cows.DeclVar, "x",
			cows.Req(e.Pool, e.ID, []string{"$x"}, body))), nil
}

// orJoin builds the paired inclusive join: one replicated choice branch
// per possible subset announcement.
func (enc *encoder) orJoin(e *bpmn.Element) (cows.Service, error) {
	split := ""
	for s, j := range enc.p.ORPairs() {
		if j == e.ID {
			split = s
			break
		}
	}
	if split == "" {
		return nil, fmt.Errorf("inclusive join %q has no paired split", e.ID)
	}
	splitOuts := enc.p.Outgoing(split)
	m := len(splitOuts)

	var branches []*cows.Request
	for mask := 1; mask < (1 << m); mask++ {
		var flows []bpmn.Flow
		for i, bf := range splitOuts {
			if mask&(1<<i) == 0 {
				continue
			}
			jf, ok := enc.p.ORBranchJoinFlow(split, bf.To)
			if !ok {
				return nil, fmt.Errorf("no join routing for split %q branch %q", split, bf.To)
			}
			flows = append(flows, jf)
		}
		await, err := enc.joinAwait(e, flows)
		if err != nil {
			return nil, err
		}
		splitPool := enc.p.Element(split).Pool
		branches = append(branches, cows.Req(e.Pool, "plan-"+e.ID,
			[]string{string(planValue(split, mask))},
			cows.Parallel(cows.Inv(splitPool, "ack-"+split), await)))
	}
	return cows.Replicate(cows.Sum(branches...)), nil
}

// subsetOp names an OR split's internal subset selector.
func subsetOp(mask int) string { return fmt.Sprintf("sel%d", mask) }

// planValue names the literal announcing an OR split's chosen subset.
func planValue(split string, mask int) cows.Lit {
	return cows.Lit(fmt.Sprintf("p-%s-%d", split, mask))
}

// EncodingReport summarizes an encoding for diagnostics: one entry per
// element with its COWS size.
type EncodingReport struct {
	Process   string
	TotalSize int
	Elements  []ElementSize
}

// ElementSize pairs an element with the AST size of its COWS service.
type ElementSize struct {
	ID   string
	Kind string
	Size int
}

// Report encodes each element separately and reports sizes.
func Report(p *bpmn.Process) (*EncodingReport, error) {
	enc := &encoder{p: p}
	rep := &EncodingReport{Process: p.Name}
	for _, e := range p.Elements() {
		s, err := enc.element(e)
		if err != nil {
			return nil, fmt.Errorf("encode: element %q: %w", e.ID, err)
		}
		n := cows.Size(s)
		rep.TotalSize += n
		rep.Elements = append(rep.Elements, ElementSize{ID: e.ID, Kind: e.Kind.String(), Size: n})
	}
	sort.Slice(rep.Elements, func(i, j int) bool { return rep.Elements[i].ID < rep.Elements[j].ID })
	return rep, nil
}
