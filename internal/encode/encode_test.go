package encode

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/bpmn"
	"repro/internal/cows"
	"repro/internal/lts"
)

// endpointTraces enumerates maximal observable traces as sequences of
// endpoints (origins stripped), space-joined and sorted.
func endpointTraces(t *testing.T, p *bpmn.Process, maxDepth int) []string {
	t.Helper()
	s, err := Encode(p)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	y := NewSystem(p)
	res, err := y.ObservableTraces(s, lts.TraceLimits{MaxDepth: maxDepth, MaxTraces: 100000})
	if err != nil {
		t.Fatalf("ObservableTraces: %v", err)
	}
	// Distinct full traces can project to the same endpoint sequence:
	// silent token deliveries may interleave before or after an
	// observable label, splitting states (the paper's St11/St12
	// phenomenon in Fig. 6). The trace *language* is what the tests
	// pin down, so project and deduplicate.
	set := map[string]bool{}
	for _, tr := range res.Traces {
		var eps []string
		for _, l := range tr {
			// label strings look like "P.T1(-)"; strip the args.
			if i := strings.IndexByte(l, '('); i >= 0 {
				l = l[:i]
			}
			eps = append(eps, l)
		}
		set[strings.Join(eps, " ")] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func wantTraces(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("traces:\n got %v\nwant %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("trace[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestEncodeLinear(t *testing.T) {
	p := bpmn.NewBuilder("linear").Pool("P").
		Start("S", "P").Task("T1", "P", "").Task("T2", "P", "").End("E", "P").
		Seq("S", "T1", "T2", "E").MustBuild()
	wantTraces(t, endpointTraces(t, p, 10), []string{"P.T1 P.T2"})
}

func TestEncodeOriginPropagation(t *testing.T) {
	p := bpmn.NewBuilder("linear").Pool("P").
		Start("S", "P").Task("T1", "P", "").Task("T2", "P", "").End("E", "P").
		Seq("S", "T1", "T2", "E").MustBuild()
	s, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	y := NewSystem(p)
	obs, err := y.WeakNext(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 1 || obs[0].Label.Endpoint() != "P.T1" {
		t.Fatalf("first weak-next = %v", obs)
	}
	// The start token carries the empty origin set.
	if got := obs[0].Label.Origins(); len(got) != 0 {
		t.Fatalf("T1 origins = %v, want empty", got)
	}
	obs, err = y.WeakNext(obs[0].State)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 1 || obs[0].Label.Endpoint() != "P.T2" {
		t.Fatalf("second weak-next = %v", obs)
	}
	// T2's token originates from T1.
	if got := obs[0].Label.Origins(); len(got) != 1 || got[0] != "T1" {
		t.Fatalf("T2 origins = %v, want [T1]", got)
	}
}

func TestEncodeXOR(t *testing.T) {
	p := bpmn.NewBuilder("xor").Pool("P").
		Start("S", "P").Task("T0", "P", "").XOR("G", "P").
		Task("T1", "P", "").Task("T2", "P", "").End("E1", "P").End("E2", "P").
		Seq("S", "T0", "G").Seq("G", "T1", "E1").Seq("G", "T2", "E2").
		MustBuild()
	wantTraces(t, endpointTraces(t, p, 10), []string{"P.T0 P.T1", "P.T0 P.T2"})
}

func TestEncodeXORMergeCycle(t *testing.T) {
	// S→T1→G; G→T1 (loop) or G→E. Unbounded traces; verify prefix
	// acceptance instead of enumeration.
	p := bpmn.NewBuilder("loop").Pool("P").
		Start("S", "P").Task("T1", "P", "").XOR("G", "P").End("E", "P").
		Seq("S", "T1", "G").Seq("G", "T1").Seq("G", "E").
		MustBuild()
	s, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	y := NewSystem(p)
	cur := s
	for i := 0; i < 4; i++ {
		obs, err := y.WeakNext(cur)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if len(obs) != 1 || obs[0].Label.Endpoint() != "P.T1" {
			t.Fatalf("iteration %d: weak-next = %v, want P.T1", i, obs)
		}
		cur = obs[0].State
	}
	// The loop can also exit silently to E at any iteration.
	ok, err := y.CanTerminateSilently(cur)
	if err != nil || !ok {
		t.Fatalf("CanTerminateSilently = %v, %v; want true", ok, err)
	}
}

func TestEncodeFallibleTask(t *testing.T) {
	// T2 may fail; its error routes back to T1 (the paper's T02/T01
	// shape from Fig. 1).
	p := bpmn.NewBuilder("fallible").Pool("P").
		Start("S", "P").Task("T1", "P", "").FallibleTask("T2", "P", "", "T1").End("E", "P").
		Seq("S", "T1", "T2", "E").
		MustBuild()
	s, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	y := NewSystem(p)

	// T1 then T2.
	obs, err := y.WeakNext(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 1 || obs[0].Label.Endpoint() != "P.T1" {
		t.Fatalf("step 1 = %v", obs)
	}
	obs, err = y.WeakNext(obs[0].State)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 1 || obs[0].Label.Endpoint() != "P.T2" {
		t.Fatalf("step 2 = %v", obs)
	}
	// From within T2: either the process completes silently (success
	// path reaches E) or the observable sys.Err fires.
	after := obs[0].State
	obs, err = y.WeakNext(after)
	if err != nil {
		t.Fatal(err)
	}
	var found *lts.Observable
	for i := range obs {
		if obs[i].Label.Endpoint() == "sys.Err" {
			found = &obs[i]
		}
	}
	if found == nil {
		t.Fatalf("no sys.Err among %v", obs)
	}
	// The Err label carries the failing task as origin.
	if got := found.Label.Origins(); len(got) != 1 || got[0] != "T2" {
		t.Fatalf("Err origins = %v, want [T2]", got)
	}
	ok, err := y.CanTerminateSilently(after)
	if err != nil || !ok {
		t.Fatalf("success path should complete silently: %v, %v", ok, err)
	}
	// After the failure, T1 runs again.
	obs, err = y.WeakNext(found.State)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 1 || obs[0].Label.Endpoint() != "P.T1" {
		t.Fatalf("after failure = %v, want P.T1", obs)
	}
	if got := obs[0].Label.Origins(); len(got) != 1 || got[0] != "T2" {
		t.Fatalf("restart origins = %v, want [T2]", got)
	}
}

func TestEncodeANDSplitJoin(t *testing.T) {
	p := bpmn.NewBuilder("and").Pool("P").
		Start("S", "P").AND("G", "P").
		Task("T1", "P", "").Task("T2", "P", "").
		AND("J", "P").Task("T3", "P", "").End("E", "P").
		Seq("S", "G").Seq("G", "T1", "J").Seq("G", "T2", "J").Seq("J", "T3", "E").
		MustBuild()
	wantTraces(t, endpointTraces(t, p, 10), []string{
		"P.T1 P.T2 P.T3",
		"P.T2 P.T1 P.T3",
	})

	// T3's token must carry both branch origins (the join unions).
	s, _ := Encode(p)
	y := NewSystem(p)
	cur := s
	for _, want := range []string{"P.T1", "P.T2"} {
		obs, err := y.WeakNext(cur)
		if err != nil {
			t.Fatal(err)
		}
		var next *lts.Observable
		for i := range obs {
			if obs[i].Label.Endpoint() == want {
				next = &obs[i]
			}
		}
		if next == nil {
			t.Fatalf("missing %s among %v", want, obs)
		}
		cur = next.State
	}
	obs, err := y.WeakNext(cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 1 || obs[0].Label.Endpoint() != "P.T3" {
		t.Fatalf("join output = %v", obs)
	}
	if got := obs[0].Label.Origins(); len(got) != 2 || got[0] != "T1" || got[1] != "T2" {
		t.Fatalf("T3 origins = %v, want [T1 T2]", got)
	}
}

func TestEncodeORSplitJoin(t *testing.T) {
	p := bpmn.NewBuilder("or").Pool("P").
		Start("S", "P").OR("G", "P").
		Task("T1", "P", "").Task("T2", "P", "").
		OR("J", "P").Task("T3", "P", "").End("E", "P").
		Seq("S", "G").Seq("G", "T1", "J").Seq("G", "T2", "J").Seq("J", "T3", "E").
		PairOR("G", "J").
		MustBuild()
	wantTraces(t, endpointTraces(t, p, 10), []string{
		"P.T1 P.T2 P.T3", // both branches, T1 first
		"P.T1 P.T3",      // only T1
		"P.T2 P.T1 P.T3", // both branches, T2 first
		"P.T2 P.T3",      // only T2
	})
}

func TestEncodeMessageFlowAcrossPools(t *testing.T) {
	p := bpmn.NewBuilder("msg").Pool("A").Pool("B").
		Start("S", "A").Task("T1", "A", "").MessageEnd("E1", "A").
		MessageStart("M", "B").Task("T2", "B", "").End("E2", "B").
		Seq("S", "T1", "E1").Msg("E1", "M").Seq("M", "T2", "E2").
		MustBuild()
	wantTraces(t, endpointTraces(t, p, 10), []string{"A.T1 B.T2"})

	// T2's origins must trace back to T1 across the message flow.
	s, _ := Encode(p)
	y := NewSystem(p)
	obs, err := y.WeakNext(s)
	if err != nil {
		t.Fatal(err)
	}
	obs, err = y.WeakNext(obs[0].State)
	if err != nil {
		t.Fatal(err)
	}
	if got := obs[0].Label.Origins(); len(got) != 1 || got[0] != "T1" {
		t.Fatalf("T2 origins = %v, want [T1]", got)
	}
}

func TestObservabilityPredicate(t *testing.T) {
	p := bpmn.NewBuilder("obs").Pool("P").
		Start("S", "P").Task("T1", "P", "").End("E", "P").
		Seq("S", "T1", "E").MustBuild()
	obs := Observability(p)
	cases := []struct {
		l    cows.Label
		want bool
	}{
		{cows.CommLabel("P", "T1"), true},
		{cows.CommLabel("sys", "Err", "T1"), true},
		{cows.CommLabel("P", "E"), false},       // event, not a task
		{cows.CommLabel("sys", "T1"), false},    // gateway-internal, wrong partner
		{cows.CommLabel("Q", "T1"), false},      // wrong pool
		{cows.KillLabelOf("k"), false},          // kills are silent
		{cows.CommLabel("P", "plan-J"), false},  // plan channel
		{cows.CommLabel("P", "J-T1"), false},    // join input
		{cows.CommLabel("P", "missing"), false}, // unknown op
	}
	for _, c := range cases {
		if got := obs(c.l); got != c.want {
			t.Errorf("obs(%v) = %v, want %v", c.l, got, c.want)
		}
	}
}

func TestEncodingReport(t *testing.T) {
	p := bpmn.NewBuilder("rep").Pool("P").
		Start("S", "P").Task("T1", "P", "").XOR("G", "P").
		Task("T2", "P", "").Task("T3", "P", "").End("E1", "P").End("E2", "P").
		Seq("S", "T1", "G").Seq("G", "T2", "E1").Seq("G", "T3", "E2").
		MustBuild()
	rep, err := Report(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalSize <= 0 || len(rep.Elements) != len(p.Elements()) {
		t.Fatalf("report = %+v", rep)
	}
	// Gateways encode larger than events.
	sizes := map[string]int{}
	for _, es := range rep.Elements {
		sizes[es.ID] = es.Size
	}
	if sizes["G"] <= sizes["E1"] {
		t.Errorf("gateway size %d should exceed event size %d", sizes["G"], sizes["E1"])
	}
}

func TestEncodeTwoConcurrentCases(t *testing.T) {
	// Two instances of the same process run as independent parallel
	// services; their interleavings must not cross-talk (each case is
	// its own COWS term in the checker, but encoding twice in parallel
	// must also work because replication freshens private names).
	p := bpmn.NewBuilder("xor2").Pool("P").
		Start("S", "P").Task("T0", "P", "").XOR("G", "P").
		Task("T1", "P", "").Task("T2", "P", "").End("E1", "P").End("E2", "P").
		Seq("S", "T0", "G").Seq("G", "T1", "E1").Seq("G", "T2", "E2").
		MustBuild()
	s1, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	both := cows.Parallel(s1, s2)
	y := NewSystem(p)
	res, err := y.ObservableTraces(both, lts.TraceLimits{MaxDepth: 10, MaxTraces: 100000})
	if err != nil {
		t.Fatal(err)
	}
	// Each trace is an interleaving of two independent runs; every
	// trace must contain exactly two T0 and two of {T1,T2}.
	for _, tr := range res.Traces {
		t0, branch := 0, 0
		for _, l := range tr {
			switch {
			case strings.HasPrefix(l, "P.T0"):
				t0++
			case strings.HasPrefix(l, "P.T1"), strings.HasPrefix(l, "P.T2"):
				branch++
			}
		}
		if t0 != 2 || branch != 2 {
			t.Fatalf("bad interleaving %v (t0=%d branch=%d)", tr, t0, branch)
		}
	}
}

func TestEncodeNestedGateways(t *testing.T) {
	// AND split whose branches each contain an XOR choice: the trace
	// language is the interleavings of one choice per branch.
	p := bpmn.NewBuilder("nested").Pool("P").
		Start("S", "P").AND("GA", "P").
		XOR("GX1", "P").Task("A1", "P", "").Task("A2", "P", "").XOR("MX1", "P").
		XOR("GX2", "P").Task("B1", "P", "").Task("B2", "P", "").XOR("MX2", "P").
		AND("JA", "P").Task("TZ", "P", "").End("E", "P").
		Seq("S", "GA").
		Seq("GA", "GX1").Seq("GX1", "A1", "MX1").Seq("GX1", "A2", "MX1").
		Seq("GA", "GX2").Seq("GX2", "B1", "MX2").Seq("GX2", "B2", "MX2").
		Seq("MX1", "JA").Seq("MX2", "JA").Seq("JA", "TZ", "E").
		MustBuild()
	got := endpointTraces(t, p, 10)
	// 2 choices × 2 choices × 2 interleavings = 8 traces.
	if len(got) != 8 {
		t.Fatalf("traces = %v, want 8", got)
	}
	for _, tr := range got {
		if !strings.HasSuffix(tr, "P.TZ") {
			t.Errorf("trace %q does not end at the join task", tr)
		}
		hasA := strings.Contains(tr, "P.A1") != strings.Contains(tr, "P.A2")
		hasB := strings.Contains(tr, "P.B1") != strings.Contains(tr, "P.B2")
		if !hasA || !hasB {
			t.Errorf("trace %q violates per-branch exclusivity", tr)
		}
	}
}

func TestEncodeXORInsideORBranch(t *testing.T) {
	// An OR branch containing an XOR: subsets and inner choices
	// compose.
	p := bpmn.NewBuilder("orxor").Pool("P").
		Start("S", "P").OR("G", "P").
		XOR("GX", "P").Task("A1", "P", "").Task("A2", "P", "").XOR("MX", "P").
		Task("B", "P", "").
		OR("J", "P").Task("TZ", "P", "").End("E", "P").
		Seq("S", "G").
		Seq("G", "GX").Seq("GX", "A1", "MX").Seq("GX", "A2", "MX").Seq("MX", "J").
		Seq("G", "B").Seq("B", "J").
		Seq("J", "TZ", "E").
		PairOR("G", "J").
		MustBuild()
	got := endpointTraces(t, p, 10)
	// Subsets: {X-branch} (2 inner choices), {B}, {both} (2 choices × 2
	// orders) = 2 + 1 + 4 = 7 trace strings.
	if len(got) != 7 {
		t.Fatalf("traces (%d) = %v, want 7", len(got), got)
	}
}

func TestEncodeRejectsPathologies(t *testing.T) {
	// The encoder trusts bpmn validation; encoding an element list with
	// a hand-broken process is not possible through the public API, so
	// this checks the error paths reachable via Report on valid input.
	p := bpmn.NewBuilder("ok").Pool("P").
		Start("S", "P").Task("T", "P", "").End("E", "P").
		Seq("S", "T", "E").MustBuild()
	if _, err := Report(p); err != nil {
		t.Fatalf("Report: %v", err)
	}
	if _, err := Encode(p); err != nil {
		t.Fatalf("Encode: %v", err)
	}
}
