// Package naive implements the approach the paper rejects in Section 1:
// "generate the transition system of the COWS process model and then
// verify if the audit trail corresponds to a valid trace of the
// transition system. Unfortunately, the number of possible traces can be
// infinite, for instance when the process has a loop, making this
// approach not feasible."
//
// The checker below does exactly that — it materializes the set of
// maximal observable traces (bounded, because it has to be) and matches
// the case's trail against each one. It agrees with Algorithm 1 on every
// verdict within its bounds; its cost is exponential in process
// concurrency and unbounded in cycles, which is what the P4 benchmarks
// measure against Algorithm 1's replay.
package naive

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/cows"
	"repro/internal/lts"
	"repro/internal/policy"
)

// Checker enumerates traces up front and matches trails against them.
type Checker struct {
	Registry *core.Registry
	Roles    *policy.RoleHierarchy
	// MaxDepth bounds trace length (default: trail length + Slack).
	MaxDepth int
	// Slack extends the depth bound beyond the trail length to leave
	// room for absorbed in-task actions (default 4).
	Slack int
	// MaxTraces bounds enumeration (default 1<<16).
	MaxTraces int

	systems map[string]*lts.System
}

// Result is the naive checker's outcome, with its cost counters.
type Result struct {
	Case      string
	Purpose   string
	Compliant bool
	// TracesEnumerated is how many maximal traces were materialized —
	// the blow-up the paper warns about.
	TracesEnumerated int
	// StatesVisited counts weak states expanded during enumeration.
	StatesVisited int
	// Exhaustive is false when enumeration hit a bound, in which case
	// a non-compliant verdict is only valid within the bound.
	Exhaustive bool
}

// NewChecker builds a naive checker over the same registry Algorithm 1
// uses.
func NewChecker(reg *core.Registry, roles *policy.RoleHierarchy) *Checker {
	return &Checker{Registry: reg, Roles: roles, systems: map[string]*lts.System{}}
}

func (c *Checker) system(p *core.Purpose) *lts.System {
	y, ok := c.systems[p.Name]
	if !ok {
		y = lts.NewSystem(p.Observable)
		c.systems[p.Name] = y
	}
	return y
}

func (c *Checker) roleMatches(entryRole, poolRole string) bool {
	if entryRole == poolRole {
		return true
	}
	if c.Roles == nil {
		return false
	}
	return c.Roles.Specializes(entryRole, poolRole)
}

// CheckCase enumerates the purpose's traces and matches the case slice.
func (c *Checker) CheckCase(trail *audit.Trail, caseID string) (*Result, error) {
	pur := c.Registry.ForCase(caseID)
	if pur == nil {
		return &Result{Case: caseID, Compliant: false, Exhaustive: true}, nil
	}
	entries := trail.ByCase(caseID).Entries()

	maxDepth := c.MaxDepth
	if maxDepth <= 0 {
		slack := c.Slack
		if slack <= 0 {
			slack = 4
		}
		maxDepth = len(entries) + slack
	}
	maxTraces := c.MaxTraces
	if maxTraces <= 0 {
		maxTraces = 1 << 16
	}

	y := c.system(pur)
	traces, err := y.ObservableTraces(pur.Initial, lts.TraceLimits{MaxDepth: maxDepth, MaxTraces: maxTraces})
	if err != nil {
		return nil, fmt.Errorf("naive: enumerating traces of %q: %w", pur.Name, err)
	}

	res := &Result{
		Case:             caseID,
		Purpose:          pur.Name,
		TracesEnumerated: len(traces.Traces),
		StatesVisited:    traces.StatesVisited,
		Exhaustive:       traces.Exhaustive,
	}
	// Re-derive each trace's parsed labels once. Enumeration returns
	// strings; we need ops and origins, so parse them back.
	for _, tr := range traces.Traces {
		labels := make([]parsedLabel, len(tr))
		for i, s := range tr {
			labels[i] = parseLabel(s)
		}
		if c.matchTrace(pur, labels, entries) {
			res.Compliant = true
			return res, nil
		}
	}
	return res, nil
}

// parsedLabel is the (partner, op, origins) view of a trace label.
type parsedLabel struct {
	partner string
	op      string
	origins []string
}

func parseLabel(s string) parsedLabel {
	var pl parsedLabel
	rest := s
	if i := indexByte(rest, '('); i >= 0 {
		pl.origins = cows.SetElems(rest[i+1 : len(rest)-1])
		rest = rest[:i]
	}
	if i := indexByte(rest, '.'); i >= 0 {
		pl.partner, pl.op = rest[:i], rest[i+1:]
	} else {
		pl.op = rest
	}
	return pl
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// matchTrace replays the entries against one linear trace, maintaining
// the active-task set along the trace (from the origins the labels
// carry) so in-task actions absorb exactly as in Algorithm 1. The walk
// backtracks over the absorb-vs-advance ambiguity.
func (c *Checker) matchTrace(pur *core.Purpose, labels []parsedLabel, entries []audit.Entry) bool {
	type state struct {
		entry int
		pos   int
	}
	seen := map[state]bool{}

	// activeAt[i] is the active set after firing labels[0..i-1].
	activeAt := make([]map[core.ActiveTask]bool, len(labels)+1)
	activeAt[0] = map[core.ActiveTask]bool{}
	for i, l := range labels {
		next := map[core.ActiveTask]bool{}
		consumed := map[string]bool{}
		for _, o := range l.origins {
			consumed[o] = true
		}
		for a := range activeAt[i] {
			if !consumed[a.Task] {
				next[a] = true
			}
		}
		if l.op != "Err" && pur.Process.HasTask(l.op) {
			next[core.ActiveTask{Role: l.partner, Task: l.op}] = true
		}
		activeAt[i+1] = next
	}

	var walk func(st state) bool
	walk = func(st state) bool {
		if st.entry == len(entries) {
			return true
		}
		if seen[st] {
			return false
		}
		seen[st] = true
		e := entries[st.entry]

		// Absorb: a successful action within an active task.
		if e.Status == audit.Success {
			for a := range activeAt[st.pos] {
				if a.Task == e.Task && c.roleMatches(e.Role, a.Role) {
					if walk(state{entry: st.entry + 1, pos: st.pos}) {
						return true
					}
					break
				}
			}
		}
		// Advance: the next trace label accepts the entry.
		if st.pos < len(labels) {
			l := labels[st.pos]
			ok := false
			if e.Status == audit.Failure {
				if l.op == "Err" {
					for _, o := range l.origins {
						if o == e.Task {
							ok = true
							break
						}
					}
				}
			} else {
				ok = l.op == e.Task && c.roleMatches(e.Role, l.partner)
			}
			if ok && walk(state{entry: st.entry + 1, pos: st.pos + 1}) {
				return true
			}
		}
		return false
	}
	return walk(state{})
}
