package naive

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/bpmn"
	"repro/internal/core"
	"repro/internal/hospital"
	"repro/internal/policy"
	"repro/internal/workload"
)

func trailOf(caseID string, steps ...string) *audit.Trail {
	var entries []audit.Entry
	for i, s := range steps {
		role, task, _ := strings.Cut(s, ":")
		e := audit.Entry{
			User: "u", Role: role, Action: "read",
			Object: policy.MustParseObject("[P1]EPR"),
			Task:   task, Case: caseID,
			Time:   time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Minute),
			Status: audit.Success,
		}
		if strings.HasPrefix(task, "!") {
			e.Task = strings.TrimPrefix(task, "!")
			e.Status = audit.Failure
			e.Object = policy.Object{}
		}
		entries = append(entries, e)
	}
	return audit.NewTrail(entries)
}

// fixtures returns processes paired with compliant and violating trails.
func fixtures(t *testing.T) (reg *core.Registry, trails map[string][]*audit.Trail, verdicts map[string][]bool) {
	t.Helper()
	reg = core.NewRegistry()

	linear := bpmn.NewBuilder("Linear").Pool("P").
		Start("S", "P").Task("T1", "P", "").Task("T2", "P", "").Task("T3", "P", "").End("E", "P").
		Seq("S", "T1", "T2", "T3", "E").MustBuild()
	reg.MustRegister(linear, "LN")

	branch := bpmn.NewBuilder("Branch").Pool("P").
		Start("S", "P").Task("T0", "P", "").XOR("G", "P").
		Task("T1", "P", "").Task("T2", "P", "").End("E1", "P").End("E2", "P").
		Seq("S", "T0", "G").Seq("G", "T1", "E1").Seq("G", "T2", "E2").MustBuild()
	reg.MustRegister(branch, "BR")

	fallible := bpmn.NewBuilder("Fallible").Pool("P").
		Start("S", "P").Task("T1", "P", "").FallibleTask("T2", "P", "", "T1").End("E", "P").
		Seq("S", "T1", "T2", "E").MustBuild()
	reg.MustRegister(fallible, "FB")

	incl := bpmn.NewBuilder("Incl").Pool("P").
		Start("S", "P").OR("G", "P").
		Task("T1", "P", "").Task("T2", "P", "").
		OR("J", "P").Task("T3", "P", "").End("E", "P").
		Seq("S", "G").Seq("G", "T1", "J").Seq("G", "T2", "J").Seq("J", "T3", "E").
		PairOR("G", "J").MustBuild()
	reg.MustRegister(incl, "IN")

	trails = map[string][]*audit.Trail{
		"LN": {
			trailOf("LN-1", "P:T1", "P:T2", "P:T3"),
			trailOf("LN-1", "P:T1", "P:T1", "P:T2"), // absorbed repeat, prefix
			trailOf("LN-1", "P:T2"),
			trailOf("LN-1", "P:T1", "P:T3"),
		},
		"BR": {
			trailOf("BR-1", "P:T0", "P:T1"),
			trailOf("BR-1", "P:T0", "P:T2"),
			trailOf("BR-1", "P:T0", "P:T1", "P:T2"),
		},
		"FB": {
			trailOf("FB-1", "P:T1", "P:T2", "P:!T2", "P:T1", "P:T2"),
			trailOf("FB-1", "P:T1", "P:!T1"),
		},
		"IN": {
			trailOf("IN-1", "P:T1", "P:T3"),
			trailOf("IN-1", "P:T2", "P:T1", "P:T3"),
			trailOf("IN-1", "P:T1", "P:T3", "P:T2"),
		},
	}
	verdicts = map[string][]bool{
		"LN": {true, true, false, false},
		"BR": {true, true, false},
		"FB": {true, false},
		"IN": {true, true, false},
	}
	return reg, trails, verdicts
}

// TestNaiveAgreesWithAlgorithm1 cross-validates the naive enumeration
// against Algorithm 1 on every fixture (Theorem 2: both characterize
// trace acceptance).
func TestNaiveAgreesWithAlgorithm1(t *testing.T) {
	reg, trails, verdicts := fixtures(t)
	alg1 := core.NewChecker(reg, nil)
	nv := NewChecker(reg, nil)

	for code, ts := range trails {
		for i, tr := range ts {
			caseID := tr.Cases()[0]
			want := verdicts[code][i]

			rep, err := alg1.CheckCase(tr, caseID)
			if err != nil {
				t.Fatalf("%s[%d]: alg1: %v", code, i, err)
			}
			if rep.Compliant != want {
				t.Errorf("%s[%d]: Algorithm 1 = %v, want %v (%s)", code, i, rep.Compliant, want, rep)
			}

			res, err := nv.CheckCase(tr, caseID)
			if err != nil {
				t.Fatalf("%s[%d]: naive: %v", code, i, err)
			}
			if res.Compliant != want {
				t.Errorf("%s[%d]: naive = %v, want %v (traces=%d)", code, i, res.Compliant, want, res.TracesEnumerated)
			}
			if res.TracesEnumerated == 0 {
				t.Errorf("%s[%d]: no traces enumerated", code, i)
			}
		}
	}
}

// TestNaiveInfeasibleOnFig1 is the paper's Section 1 argument made
// executable: on the full Figure 1 treatment process, enumerating the
// trace set for HT-1's 16-entry replay blows past any reasonable trace
// budget without reaching a verdict — while Algorithm 1 (see
// internal/hospital's tests) decides the same case in milliseconds.
func TestNaiveInfeasibleOnFig1(t *testing.T) {
	sc, err := hospital.NewScenario()
	if err != nil {
		t.Fatal(err)
	}
	roles, err := hospital.Roles()
	if err != nil {
		t.Fatal(err)
	}
	nv := NewChecker(sc.Registry, roles)
	nv.MaxTraces = 5000
	res, err := nv.CheckCase(sc.Trail, "HT-1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhaustive {
		t.Fatalf("enumeration unexpectedly exhaustive within %d traces", res.TracesEnumerated)
	}
	if res.Compliant {
		// Fine if it got lucky, but with depth-first ordering and
		// this budget it does not; either way, record the cost.
		t.Logf("found a matching trace after %d", res.TracesEnumerated)
	}

	// On the single-entry HT-11 the bounded enumeration IS feasible
	// (depth 1+slack) and correctly rejects the re-purposing.
	res, err = nv.CheckCase(sc.Trail, "HT-11")
	if err != nil {
		t.Fatal(err)
	}
	if res.Compliant {
		t.Fatalf("naive accepts the HT-11 infringement")
	}
	// (Rejection is sound here even though deeper traces were cut off:
	// every trace of the treatment process starts with GP.T01.)

	// Unknown case code.
	res, err = nv.CheckCase(sc.Trail, "ZZ-1")
	if err != nil || res.Compliant {
		t.Fatalf("unknown purpose: %+v %v", res, err)
	}
}

// TestNaiveBlowupCounters shows the enumeration growing exponentially
// with depth on a process combining a cycle with a branch (each loop
// iteration doubles the trace count) — the paper's infeasibility
// argument in numbers.
func TestNaiveBlowupCounters(t *testing.T) {
	loop := bpmn.NewBuilder("LoopBranch").Pool("P").
		Start("S", "P").Task("T0", "P", "").XOR("G", "P").
		Task("T1", "P", "").Task("T2", "P", "").
		XOR("M", "P").XOR("G2", "P").End("E", "P").
		Seq("S", "T0", "G").Seq("G", "T1", "M").Seq("G", "T2", "M").
		Seq("M", "G2").Seq("G2", "T0").Seq("G2", "E").MustBuild()
	reg := core.NewRegistry()
	reg.MustRegister(loop, "LP")
	nv := NewChecker(reg, nil)

	prev := 0
	for _, depth := range []int{4, 8, 12} {
		nv.MaxDepth = depth
		res, err := nv.CheckCase(trailOf("LP-1", "P:T0"), "LP-1")
		if err != nil {
			t.Fatal(err)
		}
		if !res.Compliant {
			t.Fatalf("depth %d: prefix rejected", depth)
		}
		if res.TracesEnumerated <= prev {
			t.Errorf("depth %d: traces %d did not grow past %d", depth, res.TracesEnumerated, prev)
		}
		prev = res.TracesEnumerated
	}
}

// TestRandomizedAgreement machine-checks Theorem 2 over random
// instances: on acyclic generated processes (finite trace sets, so the
// naive enumeration is exhaustive and therefore itself sound and
// complete), Algorithm 1 and the enumerator must agree on every valid
// simulated trail and on every injected mutation of it.
func TestRandomizedAgreement(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		params := workload.DefaultProcParams(fmt.Sprintf("Rnd%d", seed), seed, 8)
		params.LoopWeight = 0   // no loops...
		params.FallibleProb = 0 // ...and no error edges: acyclic => finite trace set
		proc := workload.MustGenerate(params)
		reg := core.NewRegistry()
		reg.MustRegister(proc, "RD")

		roles := policy.NewRoleHierarchy()
		if err := roles.Add("R0"); err != nil {
			t.Fatal(err)
		}
		alg1 := core.NewChecker(reg, roles)
		nv := NewChecker(reg, roles)
		nv.MaxDepth = 24
		nv.MaxTraces = 1 << 14

		sim := workload.NewSimulator(reg, workload.DefaultTrailParams(seed*31, 3, "RD"))
		trail, err := sim.Generate()
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		inj := workload.NewInjector(seed * 7)

		compare := func(slice []audit.Entry, label string) {
			t.Helper()
			mt := audit.NewTrail(slice)
			for _, caseID := range mt.Cases() {
				a, err := alg1.CheckCase(mt, caseID)
				if err != nil {
					t.Fatalf("seed=%d %s: alg1: %v", seed, label, err)
				}
				n, err := nv.CheckCase(mt, caseID)
				if err != nil {
					t.Fatalf("seed=%d %s: naive: %v", seed, label, err)
				}
				if !n.Exhaustive {
					// Bounded enumeration can only certify
					// acceptance, not rejection; skip.
					continue
				}
				if a.Compliant != n.Compliant {
					t.Errorf("seed=%d %s case %s: Algorithm 1 = %v, naive = %v (traces=%d)",
						seed, label, caseID, a.Compliant, n.Compliant, n.TracesEnumerated)
				}
			}
		}

		for _, caseID := range trail.Cases() {
			entries := trail.ByCase(caseID).Entries()
			compare(entries, "valid")
			for kind := workload.ViolationKind(0); kind < workload.NumViolationKinds; kind++ {
				if mut, ok := inj.Inject(kind, entries); ok {
					compare(mut, kind.String())
				}
			}
		}
	}
}
