package obs_test

// Tests for the PR 10 pipeline-observability primitives: the stage
// enum and record, the deterministic 1-in-N sampler, the per-shard
// flight recorder and its dump format, and the token-bucket log
// limiter.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestStageNamesAndOrder(t *testing.T) {
	want := []string{"decode", "wal_append", "wal_fsync", "queue_wait", "replay", "ledger_seal"}
	got := obs.Stages()
	if len(got) != len(want) || len(got) != int(obs.NumStages) {
		t.Fatalf("Stages() = %v, want %d stages", got, len(want))
	}
	for i, st := range got {
		if st.String() != want[i] {
			t.Errorf("stage %d = %q, want %q", i, st.String(), want[i])
		}
	}
	if obs.Stage(obs.NumStages).String() != "unknown" {
		t.Errorf("out-of-range stage String() = %q", obs.Stage(obs.NumStages).String())
	}
}

func TestStageRecord(t *testing.T) {
	r := obs.NewStageRecord()
	r.Add(obs.StageReplay, 2*time.Millisecond)
	r.Add(obs.StageReplay, 3*time.Millisecond) // accumulates across panic-resume
	if d := r.Dur(obs.StageReplay); d != 5*time.Millisecond {
		t.Errorf("replay = %v, want 5ms", d)
	}
	r.MarkEnqueued()
	r.MarkDequeued()
	if r.Dur(obs.StageQueueWait) <= 0 {
		t.Error("queue wait did not advance between enqueue and dequeue")
	}
	r.MarkDecoded()
	if r.Dur(obs.StageDecode) <= 0 {
		t.Error("decode did not advance since open")
	}
	// Out-of-range stages are ignored, not a panic.
	r.Add(obs.NumStages, time.Second)
	if d := r.Dur(obs.NumStages); d != 0 {
		t.Errorf("out-of-range Dur = %v", d)
	}
}

// TestStageRecordNilSafe: every method on a nil record is a no-op, so
// unsampled batches cost only the nil check.
func TestStageRecordNilSafe(t *testing.T) {
	var r *obs.StageRecord
	r.Add(obs.StageReplay, time.Second)
	r.MarkDecoded()
	r.MarkEnqueued()
	r.MarkDequeued()
	if d := r.Dur(obs.StageReplay); d != 0 {
		t.Errorf("nil record Dur = %v", d)
	}
}

// TestStageSamplerDeterminism: the sampler is a counter, not a coin —
// exactly batches 0, N, 2N, ... are timed, so tests and CI can predict
// which batches produce histogram samples.
func TestStageSamplerDeterminism(t *testing.T) {
	s := obs.NewStageSampler(4)
	if s.Every() != 4 {
		t.Fatalf("Every() = %d", s.Every())
	}
	var got []int
	for i := 0; i < 12; i++ {
		if s.Sample() {
			got = append(got, i)
		}
	}
	if fmt.Sprint(got) != "[0 4 8]" {
		t.Errorf("sampled batches %v, want [0 4 8]", got)
	}

	always := obs.NewStageSampler(1)
	for i := 0; i < 5; i++ {
		if !always.Sample() {
			t.Fatalf("every=1 skipped batch %d", i)
		}
	}
	for _, off := range []*obs.StageSampler{obs.NewStageSampler(0), obs.NewStageSampler(-1), nil} {
		for i := 0; i < 5; i++ {
			if off.Sample() {
				t.Fatal("disabled sampler sampled a batch")
			}
		}
		if off.Every() != 0 {
			t.Errorf("disabled Every() = %d", off.Every())
		}
	}
}

// TestStageSamplerConcurrent: N goroutines hammering one sampler get
// exactly total/every true results between them (the counter never
// double-fires under contention). Run with -race in CI.
func TestStageSamplerConcurrent(t *testing.T) {
	const workers, perWorker, every = 8, 1000, 64
	s := obs.NewStageSampler(every)
	var wg sync.WaitGroup
	hits := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if s.Sample() {
					hits[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, h := range hits {
		total += h
	}
	if want := workers * perWorker / every; total != want {
		t.Errorf("%d samples across workers, want exactly %d", total, want)
	}
}

func TestFlightRecorderRoundTrip(t *testing.T) {
	dir := t.TempDir()
	f := obs.NewFlightRecorder(2, 8, dir)

	f.Record(0, obs.FlightEvent{Kind: obs.FlightBatchFed, Case: "HT-1", N: 3, LSN: 10})
	f.Record(1, obs.FlightEvent{Kind: obs.FlightVerdict, Case: "HT-2", Detail: "violation: wrong task"})
	f.Record(-1, obs.FlightEvent{Kind: obs.FlightReadiness, Detail: "ready"})
	f.Record(99, obs.FlightEvent{Kind: obs.FlightWALError}) // out of range → server ring

	snap := f.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot holds %d events, want 4", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq <= snap[i-1].Seq {
			t.Fatalf("snapshot out of order at %d: %+v", i, snap)
		}
	}
	if snap[0].Kind != obs.FlightBatchFed || snap[0].Shard != 0 || snap[0].Time.IsZero() {
		t.Errorf("first event = %+v", snap[0])
	}
	held, total, dumps := f.Stats()
	if held != 4 || total != 4 || dumps != 0 {
		t.Errorf("Stats = %d held, %d total, %d dumps", held, total, dumps)
	}

	path, err := f.Dump("test")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir || !strings.HasPrefix(filepath.Base(path), "flightrec-test-") {
		t.Errorf("dump path %q", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var dump obs.FlightDump
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if dump.Reason != "test" || len(dump.Events) != 4 || dump.Events[1].Case != "HT-2" {
		t.Errorf("dump = %+v", dump)
	}
	if _, _, dumps := f.Stats(); dumps != 1 || f.LastDump() != path {
		t.Errorf("dump bookkeeping: %d dumps, last %q", dumps, f.LastDump())
	}
}

// TestFlightRecorderEviction: a ring holds its newest perRing events;
// one shard flooding its ring does not evict another shard's history.
func TestFlightRecorderEviction(t *testing.T) {
	f := obs.NewFlightRecorder(2, 4, t.TempDir())
	f.Record(1, obs.FlightEvent{Kind: obs.FlightVerdict, Case: "KEEP"})
	for i := 0; i < 10; i++ {
		f.Record(0, obs.FlightEvent{Kind: obs.FlightBatchFed, N: i})
	}
	snap := f.Snapshot()
	if len(snap) != 5 { // 4 newest from shard 0 + shard 1's event
		t.Fatalf("snapshot holds %d events, want 5: %+v", len(snap), snap)
	}
	var kept bool
	for _, ev := range snap {
		if ev.Case == "KEEP" {
			kept = true
		}
		if ev.Kind == obs.FlightBatchFed && ev.N < 6 {
			t.Errorf("evicted event survived: %+v", ev)
		}
	}
	if !kept {
		t.Error("shard 1's event evicted by shard 0's flood")
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *obs.FlightRecorder
	f.Record(0, obs.FlightEvent{Kind: obs.FlightPanic})
	if f.Snapshot() != nil {
		t.Error("nil Snapshot")
	}
	if held, total, dumps := f.Stats(); held != 0 || total != 0 || dumps != 0 {
		t.Error("nil Stats")
	}
	if path, err := f.Dump("x"); path != "" || err != nil {
		t.Errorf("nil Dump = %q, %v", path, err)
	}
	if f.LastDump() != "" {
		t.Error("nil LastDump")
	}
}

// TestLogLimiter: the burst passes, the flood is suppressed and
// counted, and the next allowed statement carries the count.
func TestLogLimiter(t *testing.T) {
	l := obs.NewLogLimiter(3, 0.001) // refill slow enough to be inert here
	for i := 0; i < 3; i++ {
		if ok, sup := l.Allow(); !ok || sup != 0 {
			t.Fatalf("burst statement %d: ok=%v suppressed=%d", i, ok, sup)
		}
	}
	for i := 0; i < 7; i++ {
		if ok, _ := l.Allow(); ok {
			t.Fatalf("statement %d allowed with a dry bucket", i)
		}
	}
	if got := l.Suppressed(); got != 7 {
		t.Errorf("Suppressed() = %d, want 7", got)
	}

	// A nil limiter allows everything (call sites wire unconditionally).
	var nilLim *obs.LogLimiter
	if ok, sup := nilLim.Allow(); !ok || sup != 0 {
		t.Error("nil limiter suppressed")
	}
	if nilLim.Suppressed() != 0 {
		t.Error("nil limiter counted")
	}
}

// TestLogLimiterRefill: after the refill interval elapses the next
// statement is allowed and reports how many were dropped meanwhile.
func TestLogLimiterRefill(t *testing.T) {
	l := obs.NewLogLimiter(1, 50) // a token every 20ms
	if ok, _ := l.Allow(); !ok {
		t.Fatal("first statement suppressed")
	}
	dropped := 0
	deadline := time.Now().Add(2 * time.Second)
	for {
		ok, sup := l.Allow()
		if ok {
			if int(sup) != dropped {
				t.Errorf("suppressed=%d reported, %d actually dropped", sup, dropped)
			}
			return
		}
		dropped++
		if time.Now().After(deadline) {
			t.Fatal("bucket never refilled")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRingDropped: the span ring counts what eviction discarded, for
// the auditd_trace_spans_dropped_total series.
func TestRingDropped(t *testing.T) {
	r := obs.NewRing(2)
	for i := 0; i < 5; i++ {
		r.Record(obs.Span{Name: fmt.Sprintf("s%d", i)})
	}
	if got := r.Dropped(); got != 3 {
		t.Errorf("Dropped() = %d, want 3", got)
	}
	if held, total := r.Stats(); held != 2 || total != 5 {
		t.Errorf("Stats = %d, %d", held, total)
	}
}
