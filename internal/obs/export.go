package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// JSONLExporter is a Recorder writing one span per line — the offline
// counterpart of the /v1/traces ring for purposectl -trace runs. Safe
// for concurrent use; the first write error is kept and later spans
// are dropped (tracing must never take down an audit).
type JSONLExporter struct {
	mu  sync.Mutex
	w   io.Writer
	err error
	n   int
}

// NewJSONLExporter writes spans to w.
func NewJSONLExporter(w io.Writer) *JSONLExporter {
	return &JSONLExporter{w: w}
}

// Record encodes the span as one JSON line.
func (x *JSONLExporter) Record(s Span) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.err != nil {
		return
	}
	b, err := json.Marshal(s)
	if err != nil {
		x.err = err
		return
	}
	b = append(b, '\n')
	if _, err := x.w.Write(b); err != nil {
		x.err = err
		return
	}
	x.n++
}

// Err returns the first write/encode error, nil when healthy.
func (x *JSONLExporter) Err() error {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.err
}

// Count returns the number of spans successfully written.
func (x *JSONLExporter) Count() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.n
}
