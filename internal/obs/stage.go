package obs

import (
	"sync/atomic"
	"time"
)

// Stage identifies one leg of auditd's ingest pipeline. The stages are
// listed in pipeline order: a batch is decoded from the request body,
// appended to the WAL (with the fsync wait broken out), waits in its
// shard's queue, is replayed through the monitor, and — when a ledger
// is configured — sealed into the Merkle batch.
type Stage uint8

const (
	StageDecode Stage = iota
	StageWALAppend
	StageWALFsync
	StageQueueWait
	StageReplay
	StageLedgerSeal
	// NumStages bounds the enum; StageRecord and the metrics layer size
	// their arrays with it.
	NumStages
)

var stageNames = [NumStages]string{
	"decode", "wal_append", "wal_fsync", "queue_wait", "replay", "ledger_seal",
}

// String returns the metric label for the stage.
func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// Stages lists every stage in pipeline order, for exposition loops.
func Stages() []Stage {
	out := make([]Stage, NumStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// StageRecord is one sampled batch's wall-clock breakdown. It is
// created when the batch opens, rides the batch through the shard
// queue, and is finished by the shard worker after replay — so exactly
// one goroutine touches it at a time and no locking is needed. All
// methods are nil-safe: unsampled batches carry a nil record and the
// call sites pay only the nil check.
type StageRecord struct {
	durs     [NumStages]time.Duration
	opened   time.Time
	enqueued time.Time
}

// NewStageRecord opens a record; the decode stage is measured from
// this instant.
func NewStageRecord() *StageRecord {
	return &StageRecord{opened: time.Now()}
}

// Add accumulates d into the stage (replay time accumulates across a
// panic-resume, so Add rather than Set).
func (r *StageRecord) Add(s Stage, d time.Duration) {
	if r == nil || s >= NumStages {
		return
	}
	r.durs[s] += d
}

// MarkDecoded closes the decode stage: batch open → flush.
func (r *StageRecord) MarkDecoded() {
	if r == nil {
		return
	}
	r.durs[StageDecode] += time.Since(r.opened)
}

// MarkEnqueued stamps the moment the batch entered the shard queue.
func (r *StageRecord) MarkEnqueued() {
	if r == nil {
		return
	}
	r.enqueued = time.Now()
}

// MarkDequeued closes the queue-wait stage: enqueue → worker pickup.
func (r *StageRecord) MarkDequeued() {
	if r == nil || r.enqueued.IsZero() {
		return
	}
	r.durs[StageQueueWait] += time.Since(r.enqueued)
}

// Dur returns the accumulated duration for a stage (0 when nil).
func (r *StageRecord) Dur(s Stage) time.Duration {
	if r == nil || s >= NumStages {
		return 0
	}
	return r.durs[s]
}

// StageSampler decides which batches get a StageRecord. It is a
// deterministic 1-in-N counter — not random — so tests can predict
// exactly which batches are timed and CI assertions never flake.
// Safe for concurrent use.
type StageSampler struct {
	every uint64 // 0 = never sample
	ctr   atomic.Uint64
}

// DefaultStageSample is the 1-in-N used when the configuration leaves
// sampling at zero: cheap enough that the unsampled hot path stays
// inside the benchguard envelope, frequent enough that histograms fill
// within seconds under load.
const DefaultStageSample = 64

// NewStageSampler builds a sampler timing 1 in every batches.
// every <= 0 disables sampling entirely; every == 1 times every batch.
func NewStageSampler(every int) *StageSampler {
	s := &StageSampler{}
	if every > 0 {
		s.every = uint64(every)
	}
	return s
}

// Every reports the configured 1-in-N (0 when disabled).
func (s *StageSampler) Every() int {
	if s == nil {
		return 0
	}
	return int(s.every)
}

// Sample reports whether the next batch should be timed: true for
// batch numbers 0, N, 2N, … in arrival order.
func (s *StageSampler) Sample() bool {
	if s == nil || s.every == 0 {
		return false
	}
	return (s.ctr.Add(1)-1)%s.every == 0
}
