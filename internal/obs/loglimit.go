package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// LogLimiter is a token-bucket sampler for hot-path log statements: a
// poison stream that makes every entry warn must not drown the log.
// Each Allow spends one token; when the bucket is dry the statement is
// suppressed and counted, and the next allowed statement reports how
// many were dropped in between (the `suppressed=N` convention).
//
// The zero *LogLimiter (nil) allows everything, so call sites wire it
// unconditionally.
type LogLimiter struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time

	burst   float64
	perSec  float64
	dropped int64 // since the last allowed statement

	total atomic.Int64 // lifetime suppressed, for metrics
}

// NewLogLimiter builds a limiter allowing a burst of burst statements
// and a sustained perSec statements per second. Non-positive arguments
// are clamped to 1.
func NewLogLimiter(burst int, perSec float64) *LogLimiter {
	if burst < 1 {
		burst = 1
	}
	if perSec <= 0 {
		perSec = 1
	}
	return &LogLimiter{tokens: float64(burst), burst: float64(burst), perSec: perSec, last: time.Now()}
}

// Allow reports whether the statement may be logged. When it may,
// suppressed is the number of statements dropped since the previous
// allowed one — log it as `suppressed=N` when non-zero.
func (l *LogLimiter) Allow() (ok bool, suppressed int64) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := time.Now()
	l.tokens += now.Sub(l.last).Seconds() * l.perSec
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
	l.last = now
	if l.tokens < 1 {
		l.dropped++
		l.total.Add(1)
		return false, 0
	}
	l.tokens--
	suppressed = l.dropped
	l.dropped = 0
	return true, suppressed
}

// Suppressed reports the lifetime count of suppressed statements.
func (l *LogLimiter) Suppressed() int64 {
	if l == nil {
		return 0
	}
	return l.total.Load()
}
