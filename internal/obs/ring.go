package obs

import "sync"

// Ring is a fixed-capacity span recorder: the newest spans win, memory
// stays bounded, and a snapshot is cheap — the store behind auditd's
// GET /v1/traces. Safe for concurrent use.
type Ring struct {
	mu      sync.Mutex
	buf     []Span
	next    int // write cursor
	n       int // spans currently held (≤ cap)
	total   uint64
	dropped uint64 // spans evicted by overflow
}

// DefaultRingCapacity is the span count NewRing keeps when asked for
// a non-positive capacity.
const DefaultRingCapacity = 256

// NewRing builds a ring holding up to capacity spans.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &Ring{buf: make([]Span, capacity)}
}

// Record stores the span, evicting the oldest when full.
func (r *Ring) Record(s Span) {
	r.mu.Lock()
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	} else {
		r.dropped++
	}
	r.total++
	r.mu.Unlock()
}

// Snapshot copies the held spans, oldest first.
func (r *Ring) Snapshot() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Stats reports spans currently held and recorded over the ring's
// lifetime (the difference is what eviction dropped).
func (r *Ring) Stats() (held int, total uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n, r.total
}

// Dropped reports spans evicted by overflow — today's silent data loss
// made visible (exported as auditd_trace_spans_dropped_total).
func (r *Ring) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}
