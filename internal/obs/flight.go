package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// FlightEvent is one entry in the flight recorder: a coarse pipeline
// event a crashed shard leaves behind for the post-mortem. Seq is a
// recorder-global monotonic ordering (assigned by Record); Shard is
// the originating shard, or -1 for server-level events (WAL failure,
// readiness transitions).
type FlightEvent struct {
	Seq    uint64    `json:"seq"`
	Time   time.Time `json:"time"`
	Shard  int       `json:"shard"`
	Kind   string    `json:"kind"`
	Case   string    `json:"case,omitempty"`
	Detail string    `json:"detail,omitempty"`
	N      int       `json:"n,omitempty"`
	LSN    uint64    `json:"lsn,omitempty"`
}

// Flight-event kinds. Kept as plain strings in the JSON dump so the
// format is greppable without this package.
const (
	FlightBatchFed   = "batch_fed"        // a batch finished replaying (N = entries, LSN = first)
	FlightVerdict    = "verdict"          // a case's outcome transitioned
	FlightHighWater  = "queue_high_water" // queue occupancy reached a new high-water mark (N = entries)
	FlightPanic      = "panic"            // shard worker panicked; Case/Detail name the poisoned entry
	FlightRestart    = "restart"          // supervisor restarted the shard worker (N = restart count)
	FlightShardFail  = "shard_failed"     // restart budget exhausted, shard is draining
	FlightWALError   = "wal_error"        // WAL append failed
	FlightLedgerErr  = "ledger_error"     // Merkle seal failed
	FlightReadiness  = "readiness"        // server readiness transitioned (Detail = ready|not_ready)
	FlightCheckpoint = "checkpoint"       // notable checkpoint event (Detail)
)

// FlightRecorder is an always-on bounded ring of recent pipeline
// events, one ring per shard plus one for server-level events, dumped
// to a timestamped JSON file when something goes wrong (shard panic,
// degraded readiness, SIGQUIT). Recording is a mutex-protected ring
// write per *batch* — not per entry — so it stays far off the hot
// path's critical nanoseconds.
type FlightRecorder struct {
	rings []flightRing
	dir   string
	seq   atomic.Uint64
	dumps atomic.Int64

	mu       sync.Mutex // serializes dumps
	lastDump string
}

type flightRing struct {
	mu   sync.Mutex
	buf  []FlightEvent
	next int
	n    int
}

// DefaultFlightEvents is the per-ring event capacity when the
// configuration leaves it at zero.
const DefaultFlightEvents = 256

// NewFlightRecorder builds a recorder with one ring per shard plus a
// server ring, each holding up to perRing events. Dumps are written
// under dir (os.TempDir() when empty).
func NewFlightRecorder(shards, perRing int, dir string) *FlightRecorder {
	if perRing <= 0 {
		perRing = DefaultFlightEvents
	}
	if dir == "" {
		dir = os.TempDir()
	}
	f := &FlightRecorder{rings: make([]flightRing, shards+1), dir: dir}
	for i := range f.rings {
		f.rings[i].buf = make([]FlightEvent, perRing)
	}
	return f
}

// Record stores the event in the originating shard's ring (shard -1 →
// the server ring), stamping Seq and, if unset, Time. Nil-safe.
func (f *FlightRecorder) Record(shard int, ev FlightEvent) {
	if f == nil {
		return
	}
	ring := &f.rings[len(f.rings)-1]
	if shard >= 0 && shard < len(f.rings)-1 {
		ring = &f.rings[shard]
	}
	ev.Shard = shard
	ev.Seq = f.seq.Add(1)
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	ring.mu.Lock()
	ring.buf[ring.next] = ev
	ring.next = (ring.next + 1) % len(ring.buf)
	if ring.n < len(ring.buf) {
		ring.n++
	}
	ring.mu.Unlock()
}

// Snapshot merges every ring's held events, ordered by Seq (oldest
// first). Nil-safe (returns nil).
func (f *FlightRecorder) Snapshot() []FlightEvent {
	if f == nil {
		return nil
	}
	var out []FlightEvent
	for i := range f.rings {
		r := &f.rings[i]
		r.mu.Lock()
		start := r.next - r.n
		if start < 0 {
			start += len(r.buf)
		}
		for j := 0; j < r.n; j++ {
			out = append(out, r.buf[(start+j)%len(r.buf)])
		}
		r.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Stats reports events currently held across all rings, events
// recorded over the recorder's lifetime, and dumps written.
func (f *FlightRecorder) Stats() (held int, total uint64, dumps int64) {
	if f == nil {
		return 0, 0, 0
	}
	for i := range f.rings {
		r := &f.rings[i]
		r.mu.Lock()
		held += r.n
		r.mu.Unlock()
	}
	return held, f.seq.Load(), f.dumps.Load()
}

// LastDump returns the path of the most recent dump file ("" if none).
func (f *FlightRecorder) LastDump() string {
	if f == nil {
		return ""
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastDump
}

// FlightDump is the on-disk dump format: why it was taken, when, and
// the merged event snapshot (oldest first).
type FlightDump struct {
	Reason   string        `json:"reason"`
	DumpedAt time.Time     `json:"dumped_at"`
	Events   []FlightEvent `json:"events"`
}

// Dump writes the merged snapshot to a timestamped JSON file named
// flightrec-<reason>-<unixnano>.json under the recorder's directory
// and returns its path. Nil-safe (returns "", nil).
func (f *FlightRecorder) Dump(reason string) (string, error) {
	if f == nil {
		return "", nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	d := FlightDump{Reason: reason, DumpedAt: time.Now(), Events: f.Snapshot()}
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return "", fmt.Errorf("obs: flight dump: %w", err)
	}
	// A dump is usually written at the worst possible moment (panic,
	// SIGQUIT); a missing -flight-dir must not lose it.
	if err := os.MkdirAll(f.dir, 0o755); err != nil {
		return "", fmt.Errorf("obs: flight dump: %w", err)
	}
	path := filepath.Join(f.dir, fmt.Sprintf("flightrec-%s-%d.json", reason, d.DumpedAt.UnixNano()))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("obs: flight dump: %w", err)
	}
	f.dumps.Add(1)
	f.lastDump = path
	return path, nil
}
