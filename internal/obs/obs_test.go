package obs_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hospital"
	"repro/internal/obs"
	"repro/internal/policy"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := obs.SpanContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID(), Flags: 1}
	got, err := obs.ParseTraceparent(sc.Traceparent())
	if err != nil {
		t.Fatal(err)
	}
	if got != sc {
		t.Fatalf("round trip: %+v != %+v", got, sc)
	}
}

func TestParseTraceparent(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	sc, err := obs.ParseTraceparent(valid)
	if err != nil {
		t.Fatal(err)
	}
	if sc.TraceID.String() != "0af7651916cd43dd8448eb211c80319c" ||
		sc.SpanID.String() != "b7ad6b7169203331" || sc.Flags != 1 {
		t.Fatalf("parsed %+v", sc)
	}
	// A future version with extra fields still parses (W3C forward
	// compatibility).
	if _, err := obs.ParseTraceparent("cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra"); err != nil {
		t.Fatalf("future version rejected: %v", err)
	}
	for _, bad := range []string{
		"",
		"00",
		"00-short-b7ad6b7169203331-01",
		"00-0af7651916cd43dd8448eb211c80319c-short-01",
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span id
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // forbidden version
		"00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01", // uppercase hex
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra",
	} {
		if _, err := obs.ParseTraceparent(bad); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted", bad)
		}
	}
}

func TestIDJSONRoundTrip(t *testing.T) {
	sp := obs.Span{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID(), Name: "x"}
	b, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), sp.TraceID.String()) {
		t.Fatalf("trace id not hex-encoded: %s", b)
	}
	var back obs.Span
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.TraceID != sp.TraceID || back.SpanID != sp.SpanID {
		t.Fatalf("round trip: %+v != %+v", back, sp)
	}
}

func TestRingEviction(t *testing.T) {
	r := obs.NewRing(3)
	for i := 0; i < 5; i++ {
		r.Record(obs.Span{Name: string(rune('a' + i))})
	}
	held, total := r.Stats()
	if held != 3 || total != 5 {
		t.Fatalf("held %d total %d, want 3/5", held, total)
	}
	snap := r.Snapshot()
	var names []string
	for _, s := range snap {
		names = append(names, s.Name)
	}
	if strings.Join(names, "") != "cde" {
		t.Fatalf("snapshot %v, want oldest-first c d e", names)
	}
}

func TestJSONLExporter(t *testing.T) {
	var buf bytes.Buffer
	x := obs.NewJSONLExporter(&buf)
	x.Record(obs.Span{Name: "one"})
	x.Record(obs.Span{Name: "two"})
	if err := x.Err(); err != nil {
		t.Fatal(err)
	}
	if x.Count() != 2 {
		t.Fatalf("count %d", x.Count())
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		var sp obs.Span
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("%d JSONL lines", lines)
	}
}

func TestDisabledTracerIsNoOp(t *testing.T) {
	var tr *obs.Tracer
	sp := tr.StartSpan(obs.SpanContext{}, "x")
	// All methods on the nil ActiveSpan must be safe.
	sp.SetAttr("k", "v")
	sp.End()
	if sp.Context().IsValid() {
		t.Fatal("nil span has a valid context")
	}
}

func hospitalChecker(t *testing.T) *core.Checker {
	t.Helper()
	treatment, err := hospital.Treatment()
	if err != nil {
		t.Fatal(err)
	}
	trial, err := hospital.ClinicalTrial()
	if err != nil {
		t.Fatal(err)
	}
	var roles *policy.RoleHierarchy
	if roles, err = hospital.Roles(); err != nil {
		t.Fatal(err)
	}
	reg := core.NewRegistry()
	if _, err := reg.Register(treatment, hospital.TreatmentCode); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register(trial, hospital.TrialCode); err != nil {
		t.Fatal(err)
	}
	return core.NewChecker(reg, roles)
}

func TestReplayTracerSpans(t *testing.T) {
	c := hospitalChecker(t)
	trail, err := hospital.Trail()
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewRing(16)
	c.Observer = obs.NewReplayTracer(ring)

	if _, err := c.CheckCase(trail, "HT-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CheckCase(trail, "HT-10"); err != nil {
		t.Fatal(err)
	}
	spans := ring.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("%d spans, want one per replay", len(spans))
	}
	ok, bad := spans[0], spans[1]
	if ok.Name != "replay" || ok.Attrs["case"] != "HT-1" || ok.Attrs["outcome"] != "compliant" {
		t.Fatalf("compliant span: %+v", ok)
	}
	if ok.Attrs["peak_configurations"] == "" || ok.Attrs["engine"] != "interpreted" {
		t.Fatalf("compliant span attrs: %+v", ok.Attrs)
	}
	if bad.Attrs["case"] != "HT-10" || bad.Attrs["outcome"] != "violation" ||
		bad.Attrs["diverged_at"] != "0" || bad.Attrs["expected_tasks"] == "" {
		t.Fatalf("violation span attrs: %+v", bad.Attrs)
	}
	if bad.TraceID.IsZero() || bad.SpanID.IsZero() {
		t.Fatalf("span ids missing: %+v", bad)
	}
}

func TestWriteExplanation(t *testing.T) {
	c := hospitalChecker(t)
	trail, err := hospital.Trail()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.CheckCase(trail, "HT-10")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	obs.WriteExplanation(&buf, rep.Explanation)
	out := buf.String()
	for _, want := range []string{
		"case HT-10", "violation at entry 0", "reason:", "expected: GP.T01 → tasks T01", "hint:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering lacks %q:\n%s", want, out)
		}
	}
	// Nil explanation renders nothing.
	buf.Reset()
	obs.WriteExplanation(&buf, nil)
	if buf.Len() != 0 {
		t.Fatalf("nil explanation rendered %q", buf.String())
	}
}
