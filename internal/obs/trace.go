// Package obs is the repo's zero-dependency observability layer: a
// minimal span model with W3C trace-context interop, an in-memory
// ring-buffer recorder (auditd's GET /v1/traces), a JSONL exporter for
// offline runs, a core.Observer that turns replays into spans, and the
// human renderer behind purposectl -explain.
//
// It deliberately stops far short of OpenTelemetry: the paper's
// auditor workflow needs "which entry broke case 7 and what was
// expected instead", not a sampling pipeline. Everything here is
// stdlib-only and cheap enough to leave compiled in; when no recorder
// is attached the core engines pay a single nil check per entry
// (DESIGN.md §12).
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"time"
)

// TraceID is a 16-byte W3C trace id, rendered as 32 lowercase hex
// digits. The zero value is invalid per the spec.
type TraceID [16]byte

// SpanID is an 8-byte W3C span id, rendered as 16 lowercase hex
// digits. The zero value is invalid per the spec.
type SpanID [8]byte

// IsZero reports the invalid all-zero id.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// IsZero reports the invalid all-zero id.
func (id SpanID) IsZero() bool { return id == SpanID{} }

func (id TraceID) String() string { return hex.EncodeToString(id[:]) }
func (id SpanID) String() string  { return hex.EncodeToString(id[:]) }

// MarshalText renders the id as lowercase hex (JSON uses this too).
func (id TraceID) MarshalText() ([]byte, error) { return []byte(id.String()), nil }

// UnmarshalText parses 32 hex digits.
func (id *TraceID) UnmarshalText(b []byte) error {
	if len(b) != 2*len(id) {
		return fmt.Errorf("obs: trace id %q: want %d hex digits", b, 2*len(id))
	}
	_, err := hex.Decode(id[:], b)
	return err
}

// MarshalText renders the id as lowercase hex (JSON uses this too).
func (id SpanID) MarshalText() ([]byte, error) { return []byte(id.String()), nil }

// UnmarshalText parses 16 hex digits.
func (id *SpanID) UnmarshalText(b []byte) error {
	if len(b) != 2*len(id) {
		return fmt.Errorf("obs: span id %q: want %d hex digits", b, 2*len(id))
	}
	_, err := hex.Decode(id[:], b)
	return err
}

// NewTraceID draws a random trace id.
func NewTraceID() TraceID {
	var id TraceID
	mustRead(id[:])
	return id
}

// NewSpanID draws a random span id.
func NewSpanID() SpanID {
	var id SpanID
	mustRead(id[:])
	return id
}

func mustRead(b []byte) {
	if _, err := rand.Read(b); err != nil {
		// crypto/rand failing means the platform's entropy source is
		// gone; tracing ids are not worth limping past that.
		panic(fmt.Sprintf("obs: crypto/rand: %v", err))
	}
}

// SpanContext identifies a position in a trace: the trace, the current
// span, and the W3C trace flags (bit 0 = sampled).
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Flags   byte
}

// IsValid reports a usable context (both ids non-zero, per W3C).
func (sc SpanContext) IsValid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Traceparent renders the context as a version-00 W3C traceparent
// header value.
func (sc SpanContext) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-%02x", sc.TraceID, sc.SpanID, sc.Flags)
}

// ParseTraceparent parses a W3C traceparent header value
// ("version-traceid-parentid-flags", lowercase hex as the spec
// requires). Unknown versions are accepted as long as the four known
// fields parse; all-zero ids and version ff are rejected.
func ParseTraceparent(s string) (SpanContext, error) {
	var sc SpanContext
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) < 4 {
		return sc, fmt.Errorf("obs: traceparent %q: want version-traceid-parentid-flags", s)
	}
	version, traceID, parentID, flags := parts[0], parts[1], parts[2], parts[3]
	if len(version) != 2 || !isLowerHex(version) {
		return sc, fmt.Errorf("obs: traceparent %q: bad version", s)
	}
	if version == "ff" {
		return sc, fmt.Errorf("obs: traceparent %q: version ff is forbidden", s)
	}
	if version == "00" && len(parts) != 4 {
		return sc, fmt.Errorf("obs: traceparent %q: version 00 has exactly four fields", s)
	}
	if len(traceID) != 32 || !isLowerHex(traceID) {
		return sc, fmt.Errorf("obs: traceparent %q: bad trace id", s)
	}
	if len(parentID) != 16 || !isLowerHex(parentID) {
		return sc, fmt.Errorf("obs: traceparent %q: bad parent id", s)
	}
	if len(flags) != 2 || !isLowerHex(flags) {
		return sc, fmt.Errorf("obs: traceparent %q: bad flags", s)
	}
	hex.Decode(sc.TraceID[:], []byte(traceID))
	hex.Decode(sc.SpanID[:], []byte(parentID))
	var fb [1]byte
	hex.Decode(fb[:], []byte(flags))
	sc.Flags = fb[0]
	if !sc.IsValid() {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: all-zero id", s)
	}
	return sc, nil
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// SpanEvent is a timestamped point annotation inside a span — the
// OTel "span event" shape. auditd uses it to fold a sampled batch's
// stage breakdown into its trace.
type SpanEvent struct {
	Name  string            `json:"name"`
	Time  time.Time         `json:"time"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Span is one completed operation. Parent is the zero SpanID for trace
// roots.
type Span struct {
	TraceID TraceID           `json:"trace_id"`
	SpanID  SpanID            `json:"span_id"`
	Parent  SpanID            `json:"parent_span_id"`
	Name    string            `json:"name"`
	Start   time.Time         `json:"start"`
	End     time.Time         `json:"end"`
	Attrs   map[string]string `json:"attrs,omitempty"`
	Events  []SpanEvent       `json:"events,omitempty"`
}

// Duration is the span's wall-clock extent.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Context returns the span's position for child propagation.
func (s Span) Context() SpanContext {
	return SpanContext{TraceID: s.TraceID, SpanID: s.SpanID, Flags: 1}
}

// Recorder receives completed spans. Implementations must be safe for
// concurrent use (auditd records from every shard).
type Recorder interface {
	Record(Span)
}

// Tracer mints spans into a Recorder. The zero/nil Tracer is disabled:
// StartSpan returns a nil *ActiveSpan whose methods are no-ops, so
// call sites need no branching.
type Tracer struct {
	Rec Recorder
}

// Enabled reports whether spans will actually be recorded.
func (t *Tracer) Enabled() bool { return t != nil && t.Rec != nil }

// StartSpan opens a span. A valid parent keeps its trace and becomes
// the parent span; otherwise a fresh trace is rooted.
func (t *Tracer) StartSpan(parent SpanContext, name string) *ActiveSpan {
	if !t.Enabled() {
		return nil
	}
	sp := &ActiveSpan{rec: t.Rec, span: Span{
		SpanID: NewSpanID(),
		Name:   name,
		Start:  time.Now(),
	}}
	if parent.IsValid() {
		sp.span.TraceID = parent.TraceID
		sp.span.Parent = parent.SpanID
	} else {
		sp.span.TraceID = NewTraceID()
	}
	return sp
}

// ActiveSpan is an open span. All methods are nil-safe.
type ActiveSpan struct {
	span Span
	rec  Recorder
}

// Context returns the open span's position (zero when nil).
func (a *ActiveSpan) Context() SpanContext {
	if a == nil {
		return SpanContext{}
	}
	return a.span.Context()
}

// SetAttr attaches a key/value attribute.
func (a *ActiveSpan) SetAttr(k, v string) {
	if a == nil {
		return
	}
	if a.span.Attrs == nil {
		a.span.Attrs = map[string]string{}
	}
	a.span.Attrs[k] = v
}

// AddEvent appends a timestamped event with alternating key/value
// attribute pairs (a trailing odd key is ignored).
func (a *ActiveSpan) AddEvent(name string, kv ...string) {
	if a == nil {
		return
	}
	ev := SpanEvent{Name: name, Time: time.Now()}
	if len(kv) >= 2 {
		ev.Attrs = make(map[string]string, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			ev.Attrs[kv[i]] = kv[i+1]
		}
	}
	a.span.Events = append(a.span.Events, ev)
}

// End closes the span and hands it to the recorder.
func (a *ActiveSpan) End() {
	if a == nil {
		return
	}
	a.span.End = time.Now()
	a.rec.Record(a.span)
}
