package obs

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
)

// WriteExplanation renders an Explanation for a terminal — the body of
// purposectl -explain. Layout mirrors the auditor's questions in
// order: where did it diverge, on what evidence, what was expected
// instead, and what probably went wrong.
func WriteExplanation(w io.Writer, x *core.Explanation) {
	if x == nil {
		return
	}
	head := fmt.Sprintf("case %s", x.Case)
	if x.Purpose != "" {
		head += fmt.Sprintf(" (%s)", x.Purpose)
	}
	if x.EntryIndex >= 0 {
		fmt.Fprintf(w, "  %s: %s at entry %d", head, x.Outcome, x.EntryIndex)
		if x.Timestamp != "" {
			fmt.Fprintf(w, " (%s)", x.Timestamp)
		}
		fmt.Fprintln(w)
	} else {
		fmt.Fprintf(w, "  %s: %s\n", head, x.Outcome)
	}
	if x.Entry != "" {
		fmt.Fprintf(w, "    entry:    %s\n", x.Entry)
	}
	fmt.Fprintf(w, "    reason:   %s\n", x.Reason)
	if x.EntryIndex >= 0 {
		fmt.Fprintf(w, "    replayed: %d entr%s before divergence; %d live configuration(s)\n",
			x.StepsReplayed, plural(x.StepsReplayed, "y", "ies"), x.LastGoodConfigurations)
	}
	if len(x.ActiveTasks) > 0 {
		fmt.Fprintf(w, "    active:   %s\n", strings.Join(x.ActiveTasks, ", "))
	}
	if len(x.Expected) > 0 {
		line := strings.Join(x.Expected, ", ")
		if len(x.ExpectedTasks) > 0 {
			line += fmt.Sprintf(" → tasks %s", strings.Join(x.ExpectedTasks, ", "))
		}
		fmt.Fprintf(w, "    expected: %s\n", line)
	}
	if x.NearestMiss != "" {
		fmt.Fprintf(w, "    hint:     %s\n", x.NearestMiss)
	}
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
