package obs

import (
	"fmt"
	"strconv"

	"repro/internal/audit"
	"repro/internal/core"
)

// ReplayTracer is the core.Observer that turns each case replay into
// one span: per-entry events are folded into aggregate attributes
// (peak configuration set, WeakNext candidates examined, absorption
// and symbol-cache counts) instead of per-entry spans, so a 5000-entry
// trail costs one ring slot, not 5000.
//
// Like any Observer it is invoked synchronously by the replaying
// goroutine and must not be shared across concurrently replaying
// checkers — give each its own ReplayTracer over a shared Recorder.
type ReplayTracer struct {
	tracer *Tracer
	// Parent, when valid, roots replay spans under an existing trace
	// (e.g. an ingest span).
	Parent SpanContext

	cur        *ActiveSpan
	peak       int
	candidates int
	absorbed   int
	cacheHits  int
	cacheMiss  int
}

// NewReplayTracer records replay spans into rec.
func NewReplayTracer(rec Recorder) *ReplayTracer {
	return &ReplayTracer{tracer: &Tracer{Rec: rec}}
}

// ReplayBegin opens the case's span.
func (rt *ReplayTracer) ReplayBegin(caseID, purpose, engine string, entries int) {
	rt.peak, rt.candidates, rt.absorbed, rt.cacheHits, rt.cacheMiss = 0, 0, 0, 0, 0
	rt.cur = rt.tracer.StartSpan(rt.Parent, "replay")
	rt.cur.SetAttr("case", caseID)
	rt.cur.SetAttr("purpose", purpose)
	rt.cur.SetAttr("engine", engine)
	rt.cur.SetAttr("entries", strconv.Itoa(entries))
}

// EntryAccepted folds one accepted entry into the aggregates.
func (rt *ReplayTracer) EntryAccepted(step int, e *audit.Entry, st core.StepStats) {
	if st.ConfigsAfter > rt.peak {
		rt.peak = st.ConfigsAfter
	}
	rt.candidates += st.Candidates
	if st.Absorbed {
		rt.absorbed++
	}
	if st.SymbolCacheHit {
		rt.cacheHits++
	} else {
		rt.cacheMiss++
	}
}

// EntryRejected pins the divergence onto the span.
func (rt *ReplayTracer) EntryRejected(step int, e *audit.Entry, expl *core.Explanation) {
	rt.cur.SetAttr("diverged_at", strconv.Itoa(step))
	rt.cur.SetAttr("diverged_entry", e.String())
	if expl != nil {
		rt.cur.SetAttr("reason", expl.Reason)
		if len(expl.ExpectedTasks) > 0 {
			rt.cur.SetAttr("expected_tasks", fmt.Sprintf("%v", expl.ExpectedTasks))
		}
	}
}

// ReplayEnd stamps the verdict and records the span.
func (rt *ReplayTracer) ReplayEnd(rep *core.Report) {
	sp := rt.cur
	if sp == nil {
		return
	}
	rt.cur = nil
	sp.SetAttr("outcome", rep.Outcome.String())
	sp.SetAttr("steps_replayed", strconv.Itoa(rep.StepsReplayed))
	sp.SetAttr("peak_configurations", strconv.Itoa(rt.peak))
	if rt.candidates > 0 {
		sp.SetAttr("weaknext_candidates", strconv.Itoa(rt.candidates))
	}
	if rt.absorbed > 0 {
		sp.SetAttr("entries_absorbed", strconv.Itoa(rt.absorbed))
	}
	if rep.Engine == core.EngineCompiled {
		sp.SetAttr("symbol_cache_hits", strconv.Itoa(rt.cacheHits))
		sp.SetAttr("symbol_cache_misses", strconv.Itoa(rt.cacheMiss))
	}
	sp.End()
}
