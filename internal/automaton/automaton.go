// Package automaton compiles a purpose's configuration-set semantics
// (Definition 6) ahead of time into a dense table-driven DFA.
//
// Algorithm 1 interprets the COWS LTS online: every replayed entry
// expands configuration sets through WeakNext, so first-touch latency
// and the worst case of nondeterminism are paid at audit time. For
// well-founded processes the observable-trace semantics is a regular
// language over task/error labels, so the whole configuration-set
// machine can be determinized once, offline — the move "A Declarative
// Framework for Specifying and Enforcing Purpose-aware Policies" makes
// by compiling purpose requirements into runtime monitors. Replay then
// becomes one array lookup per entry: no allocation, no WeakNext, no
// MaxConfigurations concern.
//
// # Alphabet
//
// An audit entry acts on a configuration set only through three
// predicates: its task name, its success/failure status, and the set of
// pool roles its role generalizes to (Algorithm 1 lines 5, 8, 10). Pool
// roles are finite, so entry roles collapse into finitely many *role
// classes* — bitmasks over the pool-role list. The DFA alphabet is
//
//	success symbols:  task × role-class
//	failure symbols:  one per task under StrictFailureTask
//	                  (a failure must name the erring task), else one
//
// Entries whose task is outside the process's task alphabet have no
// symbol: they can never fire a label nor be absorbed, so they map
// directly to the reject verdict — exactly the interpreter's behaviour.
//
// # Prefix acceptance
//
// Per the paper's Definition 6 prefix semantics every live state is
// accepting; the distinguished end-of-trail bit is CanComplete, which
// says whether some member configuration can silently reach quiescence
// (the replayed trail ends in a complete execution rather than
// mid-flight).
//
// # States
//
// DFA states are interned configuration-set IDs produced by subset
// construction over (COWS state, active-task set) pairs. Each state
// carries the verdict metadata replay needs — member configurations
// (for snapshots), the completion bit, and the precomputed violation
// diagnostics (expected labels, active tasks) — so the hot path never
// touches the LTS.
package automaton

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// FormatVersion is the artifact schema version (see internal/encode).
const FormatVersion = 1

// CompilerVersion participates in the content address: artifacts
// compiled by a different compiler never collide with ours.
const CompilerVersion = "purpose-automaton/1"

// DefaultMaxConfigurations mirrors the interpreter's configuration-set
// cap (core.DefaultMaxConfigurations).
const DefaultMaxConfigurations = 4096

// DefaultMaxStates bounds subset construction: exceeding it aborts the
// compile (the caller falls back to the interpreter) instead of
// materializing a pathological automaton.
const DefaultMaxStates = 20000

// Reject is the delta-table entry for "no transition": the entry
// deviates from every surviving configuration.
const Reject = int32(-1)

// ErrNotCompilable wraps every reason a purpose cannot be determinized
// ahead of time: a non-finitely-observable process, an exploration
// budget, a configuration-set or state-count overflow. Callers fall
// back to the interpreter and record the cause.
var ErrNotCompilable = errors.New("automaton: purpose is not compilable")

// ActiveTask mirrors core.ActiveTask: one element of a configuration's
// active-task set.
type ActiveTask struct {
	Role string `json:"role"`
	Task string `json:"task"`
}

// String renders the display form used in reports.
func (a ActiveTask) String() string { return a.Role + "·" + a.Task }

// Offer is a startable or active task exposed by a state (the worklist
// the Monitor serves).
type Offer struct {
	Role string `json:"role"`
	Task string `json:"task"`
}

// Config is one member configuration of a DFA state: a COWS state (by
// index into the term table) plus an active-task set (by index into the
// active-set table). Snapshots taken under the DFA are materialized
// from these tables, so a checkpoint resumes under either engine.
type Config struct {
	Term   int32 `json:"term"`
	Active int32 `json:"active"`
}

// State is one determinized configuration set with its precomputed
// verdict metadata.
type State struct {
	// Members lists the member configurations (indices into Configs),
	// sorted ascending.
	Members []int32 `json:"members"`
	// CanComplete is the end-of-trail acceptance bit: some member can
	// silently reach quiescence.
	CanComplete bool `json:"can_complete,omitempty"`
	// Expected lists the observable labels the members offer, rendered
	// exactly as the interpreter's violation diagnostics render them.
	Expected []string `json:"expected,omitempty"`
	// ActiveTasks lists the members' active tasks in display form,
	// sorted (violation diagnostics).
	ActiveTasks []string `json:"active_tasks,omitempty"`
	// Active lists the distinct active (role, task) pairs (worklists).
	Active []Offer `json:"active,omitempty"`
	// Fire lists the distinct startable tasks (worklists).
	Fire []Offer `json:"fire,omitempty"`
}

// DFA is the compiled automaton. All exported fields are serialized by
// internal/encode; the unexported ones are rebuilt by Finish.
//
// A DFA is immutable after Compile/Finish and safe for concurrent use.
type DFA struct {
	// Compiler and Fingerprint identify the artifact: Fingerprint is
	// the content address (hash of the canonical COWS term, the
	// compiler version and every semantic knob — see Fingerprint).
	Compiler    string `json:"compiler"`
	Fingerprint string `json:"fingerprint"`
	// Purpose names the purpose the automaton replays.
	Purpose string `json:"purpose"`

	// Strict / NoAbsorption record the checker flags baked into the
	// table; a checker with different flags must not use it.
	Strict       bool `json:"strict"`
	NoAbsorption bool `json:"no_absorption,omitempty"`
	// MaxConfigurations is the configuration-set cap the compile
	// honored; no reachable state exceeds it.
	MaxConfigurations int `json:"max_configurations"`

	// Tasks is the task axis of the alphabet (sorted); TaskRoles is the
	// parallel pool-role list.
	Tasks     []string `json:"tasks"`
	TaskRoles []string `json:"task_roles"`
	// PoolRoles are the distinct pool roles; role-class masks index
	// into this list bit by bit.
	PoolRoles []string `json:"pool_roles"`
	// Classes are the distinct role-class masks; RoleClass maps every
	// pool and hierarchy role to its class. Unlisted roles fall into
	// ZeroClass (they match no pool role).
	Classes   []uint64         `json:"classes"`
	RoleClass map[string]int32 `json:"role_class"`
	ZeroClass int32            `json:"zero_class"`

	// Terms is the deduplicated table of canonical COWS terms (the
	// alpha-invariant Canon form used as the ConfigID lookup key);
	// Texts holds the same terms in parseable COWS syntax, for
	// engine-neutral snapshot export. ActiveSets is the deduplicated
	// active-task sets; Configs the (term, active) member
	// configurations.
	Terms      []string       `json:"terms"`
	Texts      []string       `json:"texts"`
	ActiveSets [][]ActiveTask `json:"active_sets"`
	Configs    []Config       `json:"configs"`

	// States are the determinized configuration sets; Start is the
	// initial state; Delta is the dense transition table, row-major
	// (state*width + column), with Reject marking deviations. The row
	// width is the full symbol count, unless the automaton is
	// minimized, in which case it is Columns.
	States []State `json:"states"`
	Start  int32   `json:"start"`
	Delta  []int32 `json:"delta"`

	// Minimized records that language-equivalent states were merged
	// and the alphabet compacted at compile time (see minimize.go).
	Minimized bool `json:"minimized,omitempty"`
	// SymMap, set iff Minimized, maps each raw symbol (the SymbolFor
	// classification space) to its compacted delta column; -1 marks
	// symbols that reject in every state.
	SymMap []int32 `json:"sym_map,omitempty"`
	// Columns is the compacted delta row width (set iff Minimized).
	Columns int32 `json:"columns,omitempty"`

	taskIndex  map[string]int32
	numSymbols int32
	// width is the delta row width: Columns when minimized, else
	// numSymbols.
	width int32

	lookupOnce sync.Once
	configIdx  map[string]int32 // term\x00activeKey -> config id
	stateIdx   map[string]int32 // sorted member ids -> state id
}

// NumStates reports the determinized state count.
func (d *DFA) NumStates() int { return len(d.States) }

// NumSymbols reports the alphabet size (success task×class symbols plus
// the failure symbols).
func (d *DFA) NumSymbols() int { return int(d.numSymbols) }

func (d *DFA) failBase() int32 { return int32(len(d.Tasks) * len(d.Classes)) }

// Finish rebuilds the derived lookup structures and validates the
// tables; it must be called after deserialization (Compile calls it).
func (d *DFA) Finish() error {
	if d.Compiler != CompilerVersion {
		return fmt.Errorf("automaton: artifact compiled by %q, this compiler is %q", d.Compiler, CompilerVersion)
	}
	if len(d.TaskRoles) != len(d.Tasks) {
		return fmt.Errorf("automaton: %d tasks but %d task roles", len(d.Tasks), len(d.TaskRoles))
	}
	fail := 1
	if d.Strict {
		fail = len(d.Tasks)
	}
	d.numSymbols = int32(len(d.Tasks)*len(d.Classes) + fail)
	d.taskIndex = make(map[string]int32, len(d.Tasks))
	for i, t := range d.Tasks {
		d.taskIndex[t] = int32(i)
	}
	d.width = d.numSymbols
	if d.Minimized != (d.SymMap != nil) || d.Minimized != (d.Columns > 0) {
		return fmt.Errorf("automaton: inconsistent minimization fields (minimized=%v, %d sym map entries, %d columns)",
			d.Minimized, len(d.SymMap), d.Columns)
	}
	if d.Minimized {
		if len(d.SymMap) != int(d.numSymbols) {
			return fmt.Errorf("automaton: sym map has %d entries, want %d symbols", len(d.SymMap), d.numSymbols)
		}
		if d.Columns > d.numSymbols {
			return fmt.Errorf("automaton: %d columns exceed %d symbols", d.Columns, d.numSymbols)
		}
		for i, m := range d.SymMap {
			if m < -1 || m >= d.Columns {
				return fmt.Errorf("automaton: sym map[%d]=%d out of range", i, m)
			}
		}
		d.width = d.Columns
	}
	if len(d.Delta) != len(d.States)*int(d.width) {
		return fmt.Errorf("automaton: delta has %d entries, want %d states × %d symbols", len(d.Delta), len(d.States), d.width)
	}
	if d.Start < 0 || int(d.Start) >= len(d.States) {
		return fmt.Errorf("automaton: start state %d out of range", d.Start)
	}
	if d.ZeroClass < 0 || int(d.ZeroClass) >= len(d.Classes) {
		return fmt.Errorf("automaton: zero class %d out of range", d.ZeroClass)
	}
	for _, c := range d.RoleClass {
		if c < 0 || int(c) >= len(d.Classes) {
			return fmt.Errorf("automaton: role class %d out of range", c)
		}
	}
	for i, next := range d.Delta {
		if next != Reject && (next < 0 || int(next) >= len(d.States)) {
			return fmt.Errorf("automaton: delta[%d]=%d out of range", i, next)
		}
	}
	if len(d.Texts) != len(d.Terms) {
		return fmt.Errorf("automaton: %d term texts for %d terms", len(d.Texts), len(d.Terms))
	}
	for i, cfg := range d.Configs {
		if cfg.Term < 0 || int(cfg.Term) >= len(d.Terms) {
			return fmt.Errorf("automaton: config %d references term %d out of range", i, cfg.Term)
		}
		if cfg.Active < 0 || int(cfg.Active) >= len(d.ActiveSets) {
			return fmt.Errorf("automaton: config %d references active set %d out of range", i, cfg.Active)
		}
	}
	for i := range d.States {
		for _, m := range d.States[i].Members {
			if m < 0 || int(m) >= len(d.Configs) {
				return fmt.Errorf("automaton: state %d references config %d out of range", i, m)
			}
		}
	}
	return nil
}

// ClassOf resolves an entry role to its role class. Roles outside the
// compiled table match no pool role (exact matching against a pool role
// or a hierarchy specialization would have put them in the table), so
// they land in ZeroClass.
func (d *DFA) ClassOf(role string) int32 {
	if c, ok := d.RoleClass[role]; ok {
		return c
	}
	return d.ZeroClass
}

// SymbolFor classifies one audit entry. ok=false means the entry has no
// symbol at all — its task is outside the alphabet, or (minimized
// automata) the symbol rejects in every state — and therefore maps to
// the reject verdict directly.
func (d *DFA) SymbolFor(task, role string, failure bool) (sym int32, ok bool) {
	if failure {
		if !d.Strict {
			return d.mapSym(d.failBase())
		}
		ti, ok := d.taskIndex[task]
		if !ok {
			return 0, false
		}
		return d.mapSym(d.failBase() + ti)
	}
	ti, ok := d.taskIndex[task]
	if !ok {
		return 0, false
	}
	return d.mapSym(ti*int32(len(d.Classes)) + d.ClassOf(role))
}

// mapSym folds the alphabet compaction into symbol classification, so
// Step stays a single unconditional array lookup.
func (d *DFA) mapSym(sym int32) (int32, bool) {
	if d.SymMap == nil {
		return sym, true
	}
	if m := d.SymMap[sym]; m >= 0 {
		return m, true
	}
	return 0, false
}

// Step performs one replay step: the single array lookup. state must be
// a valid state id and sym a valid symbol (from SymbolFor).
func (d *DFA) Step(state, sym int32) int32 {
	return d.Delta[state*d.width+sym]
}

// MemberConfig materializes one member configuration of a state: the
// canonical COWS term and the active-task set (shared slice — treat as
// read-only).
func (d *DFA) MemberConfig(id int32) (term string, active []ActiveTask) {
	cfg := d.Configs[id]
	return d.Terms[cfg.Term], d.ActiveSets[cfg.Active]
}

func activeKey(active []ActiveTask) string {
	var b strings.Builder
	for _, a := range active {
		b.WriteString(a.Role)
		b.WriteByte(0)
		b.WriteString(a.Task)
		b.WriteByte(1)
	}
	return b.String()
}

func memberKey(members []int32) string {
	var b strings.Builder
	for _, m := range members {
		fmt.Fprintf(&b, "%d,", m)
	}
	return b.String()
}

func (d *DFA) buildLookup() {
	d.lookupOnce.Do(func() {
		d.configIdx = make(map[string]int32, len(d.Configs))
		for i, cfg := range d.Configs {
			d.configIdx[d.Terms[cfg.Term]+"\x00"+activeKey(d.ActiveSets[cfg.Active])] = int32(i)
		}
		d.stateIdx = make(map[string]int32, len(d.States))
		for i := range d.States {
			d.stateIdx[memberKey(d.States[i].Members)] = int32(i)
		}
	})
}

// ConfigID resolves a (canonical term, sorted active set) pair to its
// member-configuration id, for promoting interpreter state into the
// DFA (snapshot restore). active must be sorted by (Role, Task) and
// deduplicated.
func (d *DFA) ConfigID(term string, active []ActiveTask) (int32, bool) {
	d.buildLookup()
	id, ok := d.configIdx[term+"\x00"+activeKey(active)]
	return id, ok
}

// StateOf resolves a set of member-configuration ids (sorted,
// deduplicated) to the DFA state with exactly that membership.
func (d *DFA) StateOf(members []int32) (int32, bool) {
	d.buildLookup()
	id, ok := d.stateIdx[memberKey(members)]
	return id, ok
}

// Stats summarizes a compiled automaton for diagnostics and ltsdump.
type Stats struct {
	Purpose    string
	States     int
	Symbols    int
	Configs    int
	Terms      int
	PoolRoles  int
	Classes    int
	DeltaBytes int
	Start      int32
	// Minimized/Columns report the minimization pass: Columns is the
	// compacted delta width (0 when not minimized).
	Minimized bool
	Columns   int
}

// Stats reports table sizes.
func (d *DFA) Stats() Stats {
	return Stats{
		Purpose:    d.Purpose,
		States:     len(d.States),
		Symbols:    int(d.numSymbols),
		Configs:    len(d.Configs),
		Terms:      len(d.Terms),
		PoolRoles:  len(d.PoolRoles),
		Classes:    len(d.Classes),
		DeltaBytes: 4 * len(d.Delta),
		Start:      d.Start,
		Minimized:  d.Minimized,
		Columns:    int(d.Columns),
	}
}

// String renders a one-line summary.
func (s Stats) String() string {
	out := fmt.Sprintf("automaton %s: %d states × %d symbols (%d configs over %d terms, %d role classes over %d pools, delta %d bytes)",
		s.Purpose, s.States, s.Symbols, s.Configs, s.Terms, s.Classes, s.PoolRoles, s.DeltaBytes)
	if s.Minimized {
		out += fmt.Sprintf(", minimized to %d columns", s.Columns)
	}
	return out
}

func sortOffers(offers []Offer) {
	sort.Slice(offers, func(i, j int) bool {
		if offers[i].Task != offers[j].Task {
			return offers[i].Task < offers[j].Task
		}
		return offers[i].Role < offers[j].Role
	})
}
