package automaton_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/automaton"
	"repro/internal/bpmn"
	"repro/internal/hospital"
)

// minimizedPair compiles the same input dense and minimized.
func minimizedPair(t *testing.T, p *bpmn.Process, mut func(*automaton.CompileInput)) (dense, min *automaton.DFA) {
	t.Helper()
	dense = compileProcess(t, p, mut)
	min = compileProcess(t, p, func(in *automaton.CompileInput) {
		if mut != nil {
			mut(in)
		}
		in.Minimize = true
	})
	return dense, min
}

// walkCompare drives both automata through the same random entry
// stream (valid and garbage tasks/roles, failures) and demands the
// same reject decisions and identical observable state metadata at
// every live step.
func walkCompare(t *testing.T, dense, min *automaton.DFA, seed int64, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tasks := append(append([]string{}, dense.Tasks...), "Zed", "")
	roles := append(append([]string{}, dense.PoolRoles...), "Janitor", "")
	ds, ms := dense.Start, min.Start
	for i := 0; i < steps; i++ {
		task := tasks[rng.Intn(len(tasks))]
		role := roles[rng.Intn(len(roles))]
		fail := rng.Intn(6) == 0
		dnext, mnext := automaton.Reject, automaton.Reject
		if sym, ok := dense.SymbolFor(task, role, fail); ok {
			dnext = dense.Step(ds, sym)
		}
		if sym, ok := min.SymbolFor(task, role, fail); ok {
			mnext = min.Step(ms, sym)
		}
		if (dnext == automaton.Reject) != (mnext == automaton.Reject) {
			t.Fatalf("step %d (%s/%s fail=%v): dense -> %d, minimized -> %d",
				i, task, role, fail, dnext, mnext)
		}
		if dnext == automaton.Reject {
			ds, ms = dense.Start, min.Start
			continue
		}
		a, b := &dense.States[dnext], &min.States[mnext]
		if a.CanComplete != b.CanComplete || len(a.Members) != len(b.Members) ||
			!reflect.DeepEqual(a.Expected, b.Expected) ||
			!reflect.DeepEqual(a.ActiveTasks, b.ActiveTasks) ||
			!reflect.DeepEqual(a.Active, b.Active) ||
			!reflect.DeepEqual(a.Fire, b.Fire) {
			t.Fatalf("step %d: observable metadata diverges:\ndense:     %+v\nminimized: %+v", i, a, b)
		}
		ds, ms = dnext, mnext
	}
}

func TestMinimizeEquivalence(t *testing.T) {
	treatment, err := hospital.Treatment()
	if err != nil {
		t.Fatal(err)
	}
	trial, err := hospital.ClinicalTrial()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		p    *bpmn.Process
		mut  func(*automaton.CompileInput)
	}{
		{"treatment", treatment, nil},
		{"trial", trial, nil},
		{"treatment-lenient", treatment, func(in *automaton.CompileInput) { in.StrictFailureTask = false }},
		{"treatment-no-absorption", treatment, func(in *automaton.CompileInput) { in.DisableAbsorption = true }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dense, min := minimizedPair(t, tc.p, tc.mut)
			if !min.Minimized || min.Columns <= 0 || len(min.SymMap) != dense.NumSymbols() {
				t.Fatalf("minimization fields: minimized=%v columns=%d symmap=%d (symbols %d)",
					min.Minimized, min.Columns, len(min.SymMap), dense.NumSymbols())
			}
			if min.NumStates() > dense.NumStates() {
				t.Fatalf("minimized has %d states, dense %d", min.NumStates(), dense.NumStates())
			}
			if int(min.Columns) >= dense.NumSymbols() {
				t.Fatalf("alphabet compaction did nothing: %d columns for %d symbols",
					min.Columns, dense.NumSymbols())
			}
			if min.Fingerprint == dense.Fingerprint {
				t.Fatal("minimized and dense artifacts share a fingerprint")
			}
			walkCompare(t, dense, min, 7, 4000)
		})
	}
}

// TestMinimizeDeterministic pins the pass's output: same input, same
// tables, byte for byte — the property the artifact cache rests on.
func TestMinimizeDeterministic(t *testing.T) {
	p, err := hospital.Treatment()
	if err != nil {
		t.Fatal(err)
	}
	mut := func(in *automaton.CompileInput) { in.Minimize = true }
	a := compileProcess(t, p, mut)
	b := compileProcess(t, p, mut)
	if a.Fingerprint != b.Fingerprint || a.Start != b.Start || a.Columns != b.Columns {
		t.Fatalf("headers differ: %v/%v %d/%d %d/%d", a.Fingerprint, b.Fingerprint, a.Start, b.Start, a.Columns, b.Columns)
	}
	if !reflect.DeepEqual(a.Delta, b.Delta) || !reflect.DeepEqual(a.SymMap, b.SymMap) ||
		!reflect.DeepEqual(a.States, b.States) {
		t.Fatal("minimized tables are not deterministic")
	}
}

// TestMinimizeSnapshotLookups checks the snapshot contract: every
// minimized state's member set resolves through StateOf (its own
// export is a real state key), so compiled->compiled restores promote.
func TestMinimizeSnapshotLookups(t *testing.T) {
	p, err := hospital.Treatment()
	if err != nil {
		t.Fatal(err)
	}
	min := compileProcess(t, p, func(in *automaton.CompileInput) { in.Minimize = true })
	for i := range min.States {
		id, ok := min.StateOf(min.States[i].Members)
		if !ok || id != int32(i) {
			t.Fatalf("state %d member set resolves to (%d, %v)", i, id, ok)
		}
	}
}
