package automaton

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// DFA minimization (CompileInput.Minimize). Subset construction interns
// states by member-configuration identity, so distinct configuration
// sets with identical futures become distinct states — and the dense
// delta carries one column per task×role-class symbol even when most
// columns reject everywhere or duplicate each other. Minimization runs
// two passes over the finished tables:
//
//  1. Hopcroft partition refinement merges states that are equivalent
//     under every observable: the replay language (via a virtual dead
//     state absorbing Reject), the end-of-trail bit, the member count
//     (StepStats reports it), and the verdict/worklist metadata
//     (violation reports render it). Each class keeps its
//     smallest-id state as representative, metadata verbatim, so every
//     report stays byte-identical to the dense automaton's.
//  2. Alphabet compaction deduplicates delta columns: symbols with
//     identical columns share one, and all-Reject columns vanish into
//     SymMap entries of -1 (SymbolFor answers ok=false, the same
//     verdict the dense lookup would reach one array access later).
//
// Merged states are invisible to replay but not to snapshots: a
// checkpoint taken in a merged state exports the representative's
// members. That is sound — the classes agree on every observable at
// every future step — and restore stays graceful because promoteCase
// falls back to the interpreter whenever a member set has no exact
// DFA state.

// minimize rewrites d in place. It must run after construct (tables
// complete) and before Finish (derived indexes not yet built).
func (d *DFA) minimize() {
	n := int32(len(d.States))
	if n == 0 {
		return
	}
	fail := 1
	if d.Strict {
		fail = len(d.Tasks)
	}
	nsym := int32(len(d.Tasks)*len(d.Classes) + fail)

	// States 0..n-1 are real; n is the virtual dead state every Reject
	// edge leads to.
	next := func(s, a int32) int32 {
		if s == n {
			return n
		}
		if t := d.Delta[s*nsym+a]; t != Reject {
			return t
		}
		return n
	}

	classOf := d.refineClasses(n, nsym, next)

	// Order the surviving classes by smallest member (the
	// representative), dropping the dead class, so state ids — and with
	// them every downstream artifact byte — are deterministic.
	deadClass := classOf[n]
	rep := map[int32]int32{}
	for s := int32(0); s < n; s++ {
		b := classOf[s]
		if r, ok := rep[b]; !ok || s < r {
			rep[b] = s
		}
	}
	delete(rep, deadClass)
	blocks := make([]int32, 0, len(rep))
	for b := range rep {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return rep[blocks[i]] < rep[blocks[j]] })
	newID := make([]int32, len(classOf))
	states := make([]State, len(blocks))
	for i, b := range blocks {
		newID[b] = int32(i)
		states[i] = d.States[rep[b]]
	}

	m := int32(len(blocks))
	merged := make([]int32, int(m)*int(nsym))
	for i, b := range blocks {
		row := d.Delta[rep[b]*nsym : (rep[b]+1)*nsym]
		out := merged[int32(i)*nsym : (int32(i)+1)*nsym]
		for a, t := range row {
			if t == Reject {
				out[a] = Reject
			} else {
				out[a] = newID[classOf[t]]
			}
		}
	}

	// Column compaction over the merged delta.
	symMap := make([]int32, nsym)
	colIdx := map[string]int32{}
	var liveCols []int32 // first symbol of each distinct live column
	key := make([]byte, 0, 4*int(m))
	for a := int32(0); a < nsym; a++ {
		key = key[:0]
		dead := true
		for s := int32(0); s < m; s++ {
			t := merged[s*nsym+a]
			if t != Reject {
				dead = false
			}
			key = binary.LittleEndian.AppendUint32(key, uint32(t))
		}
		if dead {
			symMap[a] = -1
			continue
		}
		if id, ok := colIdx[string(key)]; ok {
			symMap[a] = id
			continue
		}
		id := int32(len(liveCols))
		colIdx[string(key)] = id
		liveCols = append(liveCols, a)
		symMap[a] = id
	}
	cols := int32(len(liveCols))
	if cols == 0 {
		// Degenerate but legal (a process with no observable move):
		// keep one all-Reject column so the delta stays non-empty.
		cols = 1
		liveCols = []int32{0}
	}
	delta := make([]int32, int(m)*int(cols))
	for s := int32(0); s < m; s++ {
		for c, a := range liveCols {
			delta[s*cols+int32(c)] = merged[s*nsym+a]
		}
	}

	d.States = states
	d.Start = newID[classOf[d.Start]]
	d.Delta = delta
	d.Minimized = true
	d.SymMap = symMap
	d.Columns = cols
}

// refineClasses runs Hopcroft's partition refinement over states
// 0..n (n = dead) and returns each state's class id. The initial
// partition groups states by observable signature, so only states
// indistinguishable to reports and snapshots can ever merge.
func (d *DFA) refineClasses(n, nsym int32, next func(int32, int32) int32) []int32 {
	// Inverse transitions in CSR form: predecessors of t on symbol a
	// are invTo[invAt[a*(n+1)+t] : invAt[a*(n+1)+t+1]].
	total := int(nsym) * int(n+1)
	invAt := make([]int32, total+1)
	for s := int32(0); s <= n; s++ {
		for a := int32(0); a < nsym; a++ {
			invAt[int(a)*int(n+1)+int(next(s, a))+1]++
		}
	}
	for i := 0; i < total; i++ {
		invAt[i+1] += invAt[i]
	}
	invTo := make([]int32, int(nsym)*int(n+1))
	fill := append([]int32(nil), invAt[:total]...)
	for s := int32(0); s <= n; s++ {
		for a := int32(0); a < nsym; a++ {
			slot := int(a)*int(n+1) + int(next(s, a))
			invTo[fill[slot]] = s
			fill[slot]++
		}
	}

	p := newPartition(n + 1)
	sigs := map[string][]int32{}
	for s := int32(0); s < n; s++ {
		sigs[stateSignature(&d.States[s])] = append(sigs[stateSignature(&d.States[s])], s)
	}
	sigs["\x00dead"] = []int32{n}
	var keys []string
	for k := range sigs {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	type splitter struct{ block, sym int32 }
	var work []splitter
	var inW [][]bool
	push := func(b, a int32) {
		for int(b) >= len(inW) {
			inW = append(inW, make([]bool, nsym))
		}
		if !inW[b][a] {
			inW[b][a] = true
			work = append(work, splitter{b, a})
		}
	}
	for _, k := range keys {
		b := p.addBlock(sigs[k])
		for a := int32(0); a < nsym; a++ {
			push(b, a)
		}
	}

	var pre []int32
	for len(work) > 0 {
		sp := work[len(work)-1]
		work = work[:len(work)-1]
		inW[sp.block][sp.sym] = false

		pre = pre[:0]
		base := int(sp.sym) * int(n+1)
		for i := p.first[sp.block]; i < p.past[sp.block]; i++ {
			t := p.elems[i]
			pre = append(pre, invTo[invAt[base+int(t)]:invAt[base+int(t)+1]]...)
		}
		for _, s := range pre {
			p.markState(s)
		}
		p.splitTouched(func(old, fresh int32) {
			for a := int32(0); a < nsym; a++ {
				push(old, a)
				push(fresh, a)
			}
		})
	}
	return p.blk
}

// stateSignature renders everything replay and reporting can observe
// about a state besides its transitions; states may only merge when
// these agree, keeping minimized reports byte-identical.
func stateSignature(st *State) string {
	var b []byte
	if st.CanComplete {
		b = append(b, '1')
	} else {
		b = append(b, '0')
	}
	b = append(b, fmt.Sprintf("#%d", len(st.Members))...)
	for _, e := range st.Expected {
		b = append(b, 0)
		b = append(b, e...)
	}
	b = append(b, 1)
	for _, a := range st.ActiveTasks {
		b = append(b, 0)
		b = append(b, a...)
	}
	b = append(b, 1)
	for _, o := range st.Active {
		b = append(b, 0)
		b = append(b, o.Role...)
		b = append(b, 2)
		b = append(b, o.Task...)
	}
	b = append(b, 1)
	for _, o := range st.Fire {
		b = append(b, 0)
		b = append(b, o.Role...)
		b = append(b, 2)
		b = append(b, o.Task...)
	}
	return string(b)
}

// partition is the refinable-partition structure Hopcroft needs:
// states grouped contiguously by block, O(1) marking and splitting.
type partition struct {
	elems   []int32 // states, grouped by block
	loc     []int32 // position of each state in elems
	blk     []int32 // block of each state
	first   []int32 // per block: start in elems
	past    []int32 // per block: one past the end
	mark    []int32 // per block: number of marked (front) states
	touched []int32 // blocks with marks in the current round
}

func newPartition(n int32) *partition {
	return &partition{
		elems: make([]int32, 0, n),
		loc:   make([]int32, n),
		blk:   make([]int32, n),
	}
}

func (p *partition) addBlock(states []int32) int32 {
	b := int32(len(p.first))
	p.first = append(p.first, int32(len(p.elems)))
	for _, s := range states {
		p.loc[s] = int32(len(p.elems))
		p.blk[s] = b
		p.elems = append(p.elems, s)
	}
	p.past = append(p.past, int32(len(p.elems)))
	p.mark = append(p.mark, 0)
	return b
}

// markState moves s into its block's marked prefix.
func (p *partition) markState(s int32) {
	b := p.blk[s]
	i := p.loc[s]
	f := p.first[b] + p.mark[b]
	if i < f {
		return // already marked
	}
	if p.mark[b] == 0 {
		p.touched = append(p.touched, b)
	}
	o := p.elems[f]
	p.elems[f], p.elems[i] = s, o
	p.loc[s], p.loc[o] = f, i
	p.mark[b]++
}

// splitTouched ends a refinement round: every touched block whose
// marked prefix is proper splits into (marked, rest); onSplit receives
// the surviving and the new block id.
func (p *partition) splitTouched(onSplit func(old, fresh int32)) {
	for _, b := range p.touched {
		m := p.mark[b]
		p.mark[b] = 0
		if p.first[b]+m == p.past[b] {
			continue // everything marked: no split
		}
		fresh := int32(len(p.first))
		p.first = append(p.first, p.first[b])
		p.past = append(p.past, p.first[b]+m)
		p.mark = append(p.mark, 0)
		p.first[b] += m
		for i := p.first[fresh]; i < p.past[fresh]; i++ {
			p.blk[p.elems[i]] = fresh
		}
		onSplit(b, fresh)
	}
	p.touched = p.touched[:0]
}
