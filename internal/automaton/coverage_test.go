package automaton_test

import (
	"strings"
	"testing"

	"repro/internal/automaton"
	"repro/internal/hospital"
)

func TestCoverageCountsVisits(t *testing.T) {
	p, err := hospital.ClinicalTrial()
	if err != nil {
		t.Fatal(err)
	}
	d := compileProcess(t, p, nil)

	cov := automaton.NewCoverage(d)
	empty := cov.Report()
	if empty.States != 0 || empty.Edges != 0 {
		t.Fatalf("fresh coverage not empty: %+v", empty)
	}
	if empty.StatesTotal != d.NumStates() {
		t.Fatalf("states_total = %d, want %d", empty.StatesTotal, d.NumStates())
	}
	if empty.EdgesTotal <= 0 || empty.EdgesTotal >= len(d.Delta) {
		t.Fatalf("edges_total = %d out of %d delta cells: want the non-Reject subset",
			empty.EdgesTotal, len(d.Delta))
	}

	// Replay the linear happy path, marking states and edges the way
	// replayCompiled does.
	state := d.Start
	cov.VisitState(state)
	for _, task := range []string{"T91", "T92", "T93", "T94", "T95"} {
		sym, ok := d.SymbolFor(task, "Physician", false)
		if !ok {
			t.Fatalf("no symbol for %s", task)
		}
		next := d.Step(state, sym)
		if next == automaton.Reject {
			t.Fatalf("%s rejected", task)
		}
		cov.VisitEdge(state, sym)
		cov.VisitState(next)
		state = next
	}

	r := cov.Report()
	if r.States != 6 {
		t.Fatalf("states covered = %d, want 6 (linear 5-task path)", r.States)
	}
	if r.Edges != 5 {
		t.Fatalf("edges covered = %d, want 5", r.Edges)
	}
	if r.States > r.StatesTotal || r.Edges > r.EdgesTotal {
		t.Fatalf("covered exceeds total: %+v", r)
	}
	if r.StatePct() <= 0 || r.StatePct() > 100 || r.EdgePct() <= 0 || r.EdgePct() > 100 {
		t.Fatalf("percentages out of range: %+v", r)
	}
	if r.Purpose != p.Name || r.Fingerprint != d.Fingerprint {
		t.Fatalf("report identity mismatch: %+v", r)
	}
	if !strings.Contains(r.String(), "states 6/") {
		t.Fatalf("String() = %q", r.String())
	}

	// Marking the same state and edge again must not double-count.
	cov.VisitState(d.Start)
	if again := cov.Report(); again.States != r.States || again.Edges != r.Edges {
		t.Fatalf("re-visit changed counts: %+v vs %+v", again, r)
	}

	// Out-of-range hooks are ignored, never panic.
	cov.VisitState(-1)
	cov.VisitState(int32(d.NumStates()))
	cov.VisitEdge(-1, 0)
	cov.VisitEdge(int32(d.NumStates()), 9999)
}

func TestCoverageSetPerDFA(t *testing.T) {
	p, err := hospital.ClinicalTrial()
	if err != nil {
		t.Fatal(err)
	}
	dense := compileProcess(t, p, nil)
	min := compileProcess(t, p, func(in *automaton.CompileInput) { in.Minimize = true })

	set := automaton.NewCoverageSet()
	if set.For(dense) != set.For(dense) {
		t.Fatal("For not stable for the same DFA")
	}
	set.For(dense).VisitState(dense.Start)
	set.For(min).VisitState(min.Start)

	reports := set.Reports()
	if len(reports) != 2 {
		t.Fatalf("reports = %d, want one per DFA", len(reports))
	}
	for _, r := range reports {
		if r.States != 1 {
			t.Fatalf("start-only coverage shows %d states: %+v", r.States, r)
		}
	}
	if !reports[0].Minimized && !reports[1].Minimized {
		t.Fatal("minimized automaton not flagged in any report")
	}
}
