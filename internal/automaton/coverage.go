package automaton

import (
	"fmt"
	"sort"
	"sync"
)

// Coverage accumulates which states and transitions of one DFA a set of
// replays exercised. The scenario corpus (internal/scenario) uses it to
// answer "how much of the purpose's behaviour space do these trails
// actually visit?" — a corpus that only walks the happy path leaves most
// of the table dark, and a CI floor on the coverage ratio keeps fixture
// authors honest.
//
// States are covered when a replay enters them (the start state counts);
// edges are the non-Reject delta cells, covered when a replay takes the
// transition. Rejecting lookups cover neither: the divergence is already
// asserted by the trail's expected verdict.
//
// A Coverage is not safe for concurrent use; the scenario runner replays
// sequentially.
type Coverage struct {
	dfa    *DFA
	states []bool
	edges  []bool
	total  int // non-Reject delta cells, computed once
}

// NewCoverage returns an empty coverage map for the DFA.
func NewCoverage(d *DFA) *Coverage {
	total := 0
	for _, next := range d.Delta {
		if next != Reject {
			total++
		}
	}
	return &Coverage{
		dfa:    d,
		states: make([]bool, len(d.States)),
		edges:  make([]bool, len(d.Delta)),
		total:  total,
	}
}

// VisitState marks a state as entered. Out-of-range ids are ignored so
// a hook never panics the replay it observes.
func (c *Coverage) VisitState(state int32) {
	if state >= 0 && int(state) < len(c.states) {
		c.states[state] = true
	}
}

// VisitEdge marks the (state, symbol) transition as taken. sym must be
// the compacted symbol replay used for the Step lookup.
func (c *Coverage) VisitEdge(state, sym int32) {
	idx := int(state)*int(c.dfa.width) + int(sym)
	if state >= 0 && sym >= 0 && idx < len(c.edges) {
		c.edges[idx] = true
	}
}

// Report summarizes the accumulated coverage.
func (c *Coverage) Report() CoverageReport {
	r := CoverageReport{
		Purpose:     c.dfa.Purpose,
		Fingerprint: c.dfa.Fingerprint,
		StatesTotal: len(c.states),
		EdgesTotal:  c.total,
		Minimized:   c.dfa.Minimized,
	}
	for _, v := range c.states {
		if v {
			r.States++
		}
	}
	for i, v := range c.edges {
		if v && c.dfa.Delta[i] != Reject {
			r.Edges++
		}
	}
	return r
}

// CoverageReport is the counted result of a Coverage.
type CoverageReport struct {
	Purpose     string `json:"purpose"`
	Fingerprint string `json:"fingerprint,omitempty"`
	States      int    `json:"states"`
	StatesTotal int    `json:"states_total"`
	Edges       int    `json:"edges"`
	EdgesTotal  int    `json:"edges_total"`
	Minimized   bool   `json:"minimized,omitempty"`
}

// StatePct is the visited-state percentage (100 when the DFA has no
// states, which cannot happen for a compiled purpose).
func (r CoverageReport) StatePct() float64 {
	if r.StatesTotal == 0 {
		return 100
	}
	return 100 * float64(r.States) / float64(r.StatesTotal)
}

// EdgePct is the taken-edge percentage over the non-Reject delta cells.
func (r CoverageReport) EdgePct() float64 {
	if r.EdgesTotal == 0 {
		return 100
	}
	return 100 * float64(r.Edges) / float64(r.EdgesTotal)
}

// String renders the one-line form the scenario runner prints.
func (r CoverageReport) String() string {
	return fmt.Sprintf("%s: states %d/%d (%.1f%%), edges %d/%d (%.1f%%)",
		r.Purpose, r.States, r.StatesTotal, r.StatePct(), r.Edges, r.EdgesTotal, r.EdgePct())
}

// CoverageSet hands out one Coverage per DFA, so a checker replaying
// several purposes (or recompiling under changed flags) accumulates
// coverage per automaton. Safe for concurrent For calls; the returned
// Coverage itself is not synchronized.
type CoverageSet struct {
	mu sync.Mutex
	m  map[*DFA]*Coverage
}

// NewCoverageSet returns an empty set.
func NewCoverageSet() *CoverageSet {
	return &CoverageSet{m: map[*DFA]*Coverage{}}
}

// For returns the DFA's coverage map, creating it on first use.
func (s *CoverageSet) For(d *DFA) *Coverage {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.m[d]
	if c == nil {
		c = NewCoverage(d)
		s.m[d] = c
	}
	return c
}

// Reports returns one report per tracked DFA, sorted by purpose then
// fingerprint so output is deterministic.
func (s *CoverageSet) Reports() []CoverageReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]CoverageReport, 0, len(s.m))
	for _, c := range s.m {
		out = append(out, c.Report())
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Purpose != out[j].Purpose {
			return out[i].Purpose < out[j].Purpose
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}
