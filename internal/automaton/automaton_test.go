package automaton_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/automaton"
	"repro/internal/bpmn"
	"repro/internal/encode"
	"repro/internal/hospital"
)

// compileProcess assembles a CompileInput from a BPMN process the same
// way core.Checker does and compiles it.
func compileInput(t *testing.T, p *bpmn.Process, mut func(*automaton.CompileInput)) automaton.CompileInput {
	t.Helper()
	initial, err := encode.Encode(p)
	if err != nil {
		t.Fatalf("encode %s: %v", p.Name, err)
	}
	roles, err := hospital.Roles()
	if err != nil {
		t.Fatalf("roles: %v", err)
	}
	in := automaton.CompileInput{
		Purpose:    p.Name,
		Initial:    initial,
		Observable: encode.Observability(p),
		Roles:      roles,
	}
	for _, task := range p.Tasks() {
		in.Tasks = append(in.Tasks, automaton.TaskSpec{Name: task, Role: p.TaskRole(task)})
	}
	if mut != nil {
		mut(&in)
	}
	return in
}

func compileProcess(t *testing.T, p *bpmn.Process, mut func(*automaton.CompileInput)) *automaton.DFA {
	t.Helper()
	d, err := automaton.Compile(compileInput(t, p, mut))
	if err != nil {
		t.Fatalf("compile %s: %v", p.Name, err)
	}
	return d
}

// step replays one successful task entry and fails the test on reject.
func step(t *testing.T, d *automaton.DFA, state int32, role, task string) int32 {
	t.Helper()
	sym, ok := d.SymbolFor(task, role, false)
	if !ok {
		t.Fatalf("no symbol for %s by %s", task, role)
	}
	next := d.Step(state, sym)
	if next == automaton.Reject {
		t.Fatalf("entry %s by %s rejected in state %d (expected %v)",
			task, role, state, d.States[state].Expected)
	}
	return next
}

func TestCompileClinicalTrial(t *testing.T) {
	p, err := hospital.ClinicalTrial()
	if err != nil {
		t.Fatal(err)
	}
	d := compileProcess(t, p, nil)

	if d.Start != 0 || d.NumStates() < 6 {
		t.Fatalf("unexpected shape: start=%d states=%d", d.Start, d.NumStates())
	}
	state := d.Start
	for i, task := range []string{"T91", "T92", "T93", "T94", "T95"} {
		if d.States[state].CanComplete && i < 5 {
			t.Fatalf("state before %s should not be accepting", task)
		}
		state = step(t, d, state, "Physician", task)
	}
	if !d.States[state].CanComplete {
		t.Fatalf("final state after T95 not accepting: %+v", d.States[state])
	}

	// Out-of-order entry: T93 before T91 must reject.
	sym, ok := d.SymbolFor("T93", "Physician", false)
	if !ok {
		t.Fatal("no symbol for T93")
	}
	if d.Step(d.Start, sym) != automaton.Reject {
		t.Fatal("T93 accepted from the start state")
	}

	// Unknown task never gets a symbol (interpreter: violation).
	if _, ok := d.SymbolFor("T99", "Physician", false); ok {
		t.Fatal("symbol assigned to task outside the process")
	}
}

func TestRoleHierarchyClasses(t *testing.T) {
	p, err := hospital.ClinicalTrial()
	if err != nil {
		t.Fatal(err)
	}
	d := compileProcess(t, p, nil)

	// Cardiologist specializes Physician (Section 3.2): it shares the
	// Physician pool's class bit, so it may perform T91.
	state := step(t, d, d.Start, "Cardiologist", "T91")
	if state == automaton.Reject {
		t.Fatal("specializing role rejected")
	}
	// An unknown role falls into the zero class and must reject.
	sym, ok := d.SymbolFor("T91", "Janitor", false)
	if ok {
		if d.Step(d.Start, sym) != automaton.Reject {
			t.Fatal("unknown role accepted for T91")
		}
	}
	if d.ClassOf("Janitor") != d.ZeroClass {
		t.Fatalf("unknown role class = %d, want zero class %d", d.ClassOf("Janitor"), d.ZeroClass)
	}
}

func TestCompileTreatment(t *testing.T) {
	p, err := hospital.Treatment()
	if err != nil {
		t.Fatal(err)
	}
	d := compileProcess(t, p, nil)
	st := d.Stats()
	if st.States < 10 || st.Configs < 10 {
		t.Fatalf("treatment automaton suspiciously small: %+v", st)
	}
	if !strings.Contains(st.String(), "states") {
		t.Fatalf("stats string: %q", st.String())
	}
	// The start state offers T01 (GP) but no active tasks yet.
	s0 := d.States[d.Start]
	if len(s0.ActiveTasks) != 0 {
		t.Fatalf("start state has active tasks: %v", s0.ActiveTasks)
	}
	found := false
	for _, o := range s0.Fire {
		if o.Task == "T01" && o.Role == "GP" {
			found = true
		}
	}
	if !found {
		t.Fatalf("start state does not offer T01/GP: %+v", s0.Fire)
	}
}

func TestFingerprintStability(t *testing.T) {
	p, err := hospital.Treatment()
	if err != nil {
		t.Fatal(err)
	}
	in := compileInput(t, p, nil)
	fp1 := automaton.Fingerprint(in)
	fp2 := automaton.Fingerprint(in)
	if fp1 != fp2 || len(fp1) != 64 {
		t.Fatalf("fingerprint unstable: %q vs %q", fp1, fp2)
	}
	d, err := automaton.Compile(in)
	if err != nil {
		t.Fatal(err)
	}
	if d.Fingerprint != fp1 {
		t.Fatalf("compiled fingerprint %q != precomputed %q", d.Fingerprint, fp1)
	}
	strict := in
	strict.StrictFailureTask = true
	if automaton.Fingerprint(strict) == fp1 {
		t.Fatal("strict flag does not change the fingerprint")
	}
	capped := in
	capped.MaxConfigurations = 7
	if automaton.Fingerprint(capped) == fp1 {
		t.Fatal("MaxConfigurations does not change the fingerprint")
	}
}

func TestNotCompilableBudgets(t *testing.T) {
	p, err := hospital.Treatment()
	if err != nil {
		t.Fatal(err)
	}
	_, err = automaton.Compile(compileInput(t, p, func(in *automaton.CompileInput) {
		in.MaxStates = 2
	}))
	if !errors.Is(err, automaton.ErrNotCompilable) {
		t.Fatalf("MaxStates=2: err = %v, want ErrNotCompilable", err)
	}
	_, err = automaton.Compile(compileInput(t, p, func(in *automaton.CompileInput) {
		in.MaxSilentDepth = 1
	}))
	if !errors.Is(err, automaton.ErrNotCompilable) {
		t.Fatalf("MaxSilentDepth=1: err = %v, want ErrNotCompilable", err)
	}
}

func TestSnapshotLookups(t *testing.T) {
	p, err := hospital.ClinicalTrial()
	if err != nil {
		t.Fatal(err)
	}
	d := compileProcess(t, p, nil)
	state := step(t, d, d.Start, "Physician", "T91")
	members := d.States[state].Members
	if len(members) == 0 {
		t.Fatal("state has no members")
	}
	var ids []int32
	for _, m := range members {
		term, active := d.MemberConfig(m)
		id, ok := d.ConfigID(term, active)
		if !ok {
			t.Fatalf("config %d does not round-trip", m)
		}
		ids = append(ids, id)
	}
	got, ok := d.StateOf(ids)
	if !ok || got != state {
		t.Fatalf("StateOf(members) = %d,%v want %d", got, ok, state)
	}
	if _, ok := d.StateOf([]int32{}); ok {
		t.Fatal("empty member set resolved to a state")
	}
}

func TestStrictFailureSymbols(t *testing.T) {
	p, err := hospital.Treatment()
	if err != nil {
		t.Fatal(err)
	}
	lenient := compileProcess(t, p, nil)
	strict := compileProcess(t, p, func(in *automaton.CompileInput) {
		in.StrictFailureTask = true
	})
	if lenient.NumSymbols() >= strict.NumSymbols() {
		t.Fatalf("strict mode should add failure symbols: %d vs %d",
			lenient.NumSymbols(), strict.NumSymbols())
	}
	// A failing task is trailed as its success entry followed by a
	// failure entry: reach the state after T01,T02 where the error
	// boundary (back to T01) is live.
	state := step(t, lenient, lenient.Start, "GP", "T01")
	state = step(t, lenient, state, "GP", "T02")
	sym, ok := lenient.SymbolFor("", "sys", true)
	if !ok {
		t.Fatal("no lenient failure symbol")
	}
	if lenient.Step(state, sym) == automaton.Reject {
		t.Fatalf("failure after T02 rejected (expected %v)", lenient.States[state].Expected)
	}
	// Strict: the failure of T02 has a symbol, an unrelated task's not
	// at this point.
	state = step(t, strict, strict.Start, "GP", "T01")
	state = step(t, strict, state, "GP", "T02")
	sym, ok = strict.SymbolFor("T02", "sys", true)
	if !ok {
		t.Fatal("no strict failure symbol for T02")
	}
	if strict.Step(state, sym) == automaton.Reject {
		t.Fatal("strict failure of T02 rejected")
	}
	sym, ok = strict.SymbolFor("T05", "sys", true)
	if ok && strict.Step(state, sym) != automaton.Reject {
		t.Fatal("strict failure of T05 accepted after T02")
	}
}
