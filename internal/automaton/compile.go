package automaton

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"

	"repro/internal/cows"
	"repro/internal/lts"
	"repro/internal/policy"
)

// TaskSpec names one task of the process with the pool role that
// performs it.
type TaskSpec struct {
	Name string
	Role string
}

// CompileInput is everything the compiler needs about a purpose. The
// caller (core.Checker, ltsdump) assembles it from the registered
// purpose plus its own flags, so the resulting automaton bakes in
// exactly the semantics the interpreter would apply.
type CompileInput struct {
	// Purpose is the purpose name (reporting and content addressing).
	Purpose string
	// Initial is the encoded COWS service of one fresh case.
	Initial cows.Service
	// Observable is the process's observable-label predicate; ignored
	// when System is supplied.
	Observable lts.Observability
	// Tasks lists every task with its pool role — the alphabet axis.
	Tasks []TaskSpec
	// Roles is the role hierarchy (nil = exact role matching).
	Roles *policy.RoleHierarchy

	// StrictFailureTask / DisableAbsorption mirror the checker flags.
	StrictFailureTask bool
	DisableAbsorption bool
	// MaxConfigurations caps every determinized set (0 = the
	// interpreter's default); a reachable overflow aborts the compile.
	MaxConfigurations int
	// MaxSilentDepth configures a freshly built System (ignored when
	// System is supplied; 0 = lts default).
	MaxSilentDepth int
	// MaxStates bounds subset construction (0 = DefaultMaxStates).
	MaxStates int

	// Minimize runs Hopcroft minimization and alphabet compaction
	// after subset construction (see minimize.go). It changes the
	// fingerprint: minimized and dense artifacts never alias.
	Minimize bool

	// System, when non-nil, is the warm shared LTS to compile against
	// (its observability must be the purpose's own).
	System *lts.System
}

// Fingerprint computes the artifact content address without running
// subset construction: a hash of the canonical COWS term, the compiler
// version, and every semantic knob (flags, caps, task alphabet, role
// classes). Two inputs with equal fingerprints compile to semantically
// identical automata, so the fingerprint is both the cache key and the
// load-time compatibility check.
func Fingerprint(in CompileInput) string {
	maxConfigs := in.MaxConfigurations
	if maxConfigs <= 0 {
		maxConfigs = DefaultMaxConfigurations
	}
	h := sha256.New()
	write := func(parts ...string) {
		for _, p := range parts {
			io.WriteString(h, p)
			h.Write([]byte{0})
		}
	}
	write(CompilerVersion, in.Purpose, cows.Canon(in.Initial))
	write(fmt.Sprintf("strict=%v", in.StrictFailureTask),
		fmt.Sprintf("absorb=%v", !in.DisableAbsorption),
		fmt.Sprintf("maxconf=%d", maxConfigs))
	if in.Minimize {
		// Only minimized artifacts take the extra component, so every
		// fingerprint ever produced without the flag is unchanged.
		write("minimize=hopcroft/1")
	}
	tasks := append([]TaskSpec(nil), in.Tasks...)
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].Name < tasks[j].Name })
	for _, t := range tasks {
		write("task", t.Name, t.Role)
	}
	// The hierarchy enters through the role classes it induces over the
	// pool roles, which is exactly how it affects replay semantics.
	pools, _ := poolRolesOf(tasks)
	for _, r := range rolesToClassify(in.Roles, pools) {
		write("role", r, fmt.Sprintf("%x", roleMask(in.Roles, r, pools)))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// poolRolesOf returns the sorted distinct pool roles and an index map.
func poolRolesOf(tasks []TaskSpec) ([]string, map[string]int) {
	idx := map[string]int{}
	var pools []string
	for _, t := range tasks {
		if _, ok := idx[t.Role]; !ok {
			idx[t.Role] = 0
			pools = append(pools, t.Role)
		}
	}
	sort.Strings(pools)
	for i, r := range pools {
		idx[r] = i
	}
	return pools, idx
}

// rolesToClassify returns the sorted union of pool roles and hierarchy
// roles — every role whose class can differ from the zero class.
func rolesToClassify(h *policy.RoleHierarchy, pools []string) []string {
	seen := map[string]bool{}
	var out []string
	add := func(r string) {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	for _, r := range pools {
		add(r)
	}
	if h != nil {
		for _, r := range h.Roles() {
			add(r)
		}
	}
	sort.Strings(out)
	return out
}

// roleMask computes the role-class bitmask of one entry role: bit i is
// set iff the role may perform tasks of pool role pools[i] (equality or
// hierarchy specialization — Algorithm 1 line 5).
func roleMask(h *policy.RoleHierarchy, role string, pools []string) uint64 {
	var m uint64
	for i, pr := range pools {
		if role == pr || (h != nil && h.Specializes(role, pr)) {
			m |= 1 << i
		}
	}
	return m
}

// conf is one interned (state, active-set) configuration during
// compilation.
type conf struct {
	id       int32
	svc      cows.Service
	stateID  lts.StateID
	termRef  int32
	active   []ActiveTask // sorted by (Role, Task), deduplicated
	activeID int32

	succsDone bool
	succs     []csucc
}

// csucc is one precomputed observable successor.
type csucc struct {
	op      string
	partner string
	origins []string
	target  int32
}

type compiler struct {
	in         CompileInput
	sys        *lts.System
	maxConfigs int
	maxStates  int

	tasks    []string
	taskRole map[string]string
	hasTask  map[string]bool
	pools    []string
	poolIdx  map[string]int

	classes   []uint64
	roleClass map[string]int32
	zeroClass int32

	terms   []string
	texts   []string
	termRef map[lts.StateID]int32

	activeSets [][]ActiveTask
	activeIdx  map[string]int32

	confs   []*conf
	confIdx map[uint64]int32
}

// Compile runs subset construction over the purpose's configuration
// sets and returns the table-driven DFA. Failures to determinize — a
// non-finitely-observable process, an exploration budget, a
// configuration-set overflow, a state-count overflow — are returned
// wrapped in ErrNotCompilable; the caller falls back to the interpreter
// and records the cause.
func Compile(in CompileInput) (*DFA, error) {
	c := &compiler{in: in, maxConfigs: in.MaxConfigurations, maxStates: in.MaxStates}
	if c.maxConfigs <= 0 {
		c.maxConfigs = DefaultMaxConfigurations
	}
	if c.maxStates <= 0 {
		c.maxStates = DefaultMaxStates
	}
	c.sys = in.System
	if c.sys == nil {
		var opts []lts.Option
		if in.MaxSilentDepth > 0 {
			opts = append(opts, lts.WithMaxSilentDepth(in.MaxSilentDepth))
		}
		c.sys = lts.NewSystem(in.Observable, opts...)
	}
	if err := c.buildAlphabet(); err != nil {
		return nil, err
	}
	d, err := c.construct()
	if err != nil {
		return nil, err
	}
	if in.Minimize {
		d.minimize()
	}
	d.Fingerprint = Fingerprint(in)
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return d, nil
}

func (c *compiler) buildAlphabet() error {
	tasks := append([]TaskSpec(nil), c.in.Tasks...)
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].Name < tasks[j].Name })
	c.taskRole = make(map[string]string, len(tasks))
	c.hasTask = make(map[string]bool, len(tasks))
	for _, t := range tasks {
		if c.hasTask[t.Name] {
			return fmt.Errorf("%w: duplicate task %q", ErrNotCompilable, t.Name)
		}
		c.tasks = append(c.tasks, t.Name)
		c.taskRole[t.Name] = t.Role
		c.hasTask[t.Name] = true
	}
	c.pools, c.poolIdx = poolRolesOf(tasks)
	if len(c.pools) > 64 {
		return fmt.Errorf("%w: %d pool roles exceed the 64-bit class mask", ErrNotCompilable, len(c.pools))
	}
	classOf := map[uint64]int32{}
	c.roleClass = map[string]int32{}
	addMask := func(m uint64) int32 {
		if id, ok := classOf[m]; ok {
			return id
		}
		id := int32(len(c.classes))
		c.classes = append(c.classes, m)
		classOf[m] = id
		return id
	}
	for _, r := range rolesToClassify(c.in.Roles, c.pools) {
		c.roleClass[r] = addMask(roleMask(c.in.Roles, r, c.pools))
	}
	c.zeroClass = addMask(0)
	return nil
}

func (c *compiler) internActive(active []ActiveTask) int32 {
	key := activeKey(active)
	if id, ok := c.activeIdx[key]; ok {
		return id
	}
	id := int32(len(c.activeSets))
	c.activeSets = append(c.activeSets, append([]ActiveTask(nil), active...))
	c.activeIdx[key] = id
	return id
}

func (c *compiler) internTerm(id lts.StateID, svc cows.Service) int32 {
	if ref, ok := c.termRef[id]; ok {
		return ref
	}
	ref := int32(len(c.terms))
	c.terms = append(c.terms, c.sys.CanonOf(svc))
	c.texts = append(c.texts, cows.String(svc))
	c.termRef[id] = ref
	return ref
}

// internConf interns a (state, active) pair; successors are derived
// lazily by ensureSuccs, so cyclic processes terminate.
func (c *compiler) internConf(svc cows.Service, stateID lts.StateID, active []ActiveTask, activeID int32) int32 {
	key := uint64(uint32(stateID))<<32 | uint64(uint32(activeID))
	if id, ok := c.confIdx[key]; ok {
		return id
	}
	cf := &conf{
		id:       int32(len(c.confs)),
		svc:      svc,
		stateID:  stateID,
		termRef:  c.internTerm(stateID, svc),
		active:   c.activeSets[activeID],
		activeID: activeID,
	}
	c.confs = append(c.confs, cf)
	c.confIdx[key] = cf.id
	return cf.id
}

// nextActive applies the origin discipline (DESIGN.md §4), mirroring
// core.nextActive: tasks whose token produced the label stop being
// active; a task label activates its task.
func (c *compiler) nextActive(active []ActiveTask, op, partner string, origins []string) []ActiveTask {
	out := make([]ActiveTask, 0, len(active)+1)
	for _, a := range active {
		consumed := false
		for _, o := range origins {
			if o == a.Task {
				consumed = true
				break
			}
		}
		if !consumed {
			out = append(out, a)
		}
	}
	if op != "Err" && c.hasTask[op] {
		na := ActiveTask{Role: partner, Task: op}
		pos := sort.Search(len(out), func(i int) bool {
			if out[i].Role != na.Role {
				return out[i].Role > na.Role
			}
			return out[i].Task >= na.Task
		})
		if pos == len(out) || out[pos] != na {
			out = append(out, ActiveTask{})
			copy(out[pos+1:], out[pos:])
			out[pos] = na
		}
	}
	return out
}

// ensureSuccs derives a configuration's observable successors once.
func (c *compiler) ensureSuccs(id int32) error {
	cf := c.confs[id]
	if cf.succsDone {
		return nil
	}
	obs, err := c.sys.WeakNext(cf.svc)
	if err != nil {
		return fmt.Errorf("%w: WeakNext: %v", ErrNotCompilable, err)
	}
	succs := make([]csucc, 0, len(obs))
	for _, o := range obs {
		if o.Label.Op != "Err" {
			if !c.hasTask[o.Label.Op] {
				// An observable label outside the task alphabet would
				// give the interpreter a move the table cannot express.
				return fmt.Errorf("%w: observable label %s is outside the task alphabet", ErrNotCompilable, o.Label)
			}
			if _, ok := c.poolIdx[o.Label.Partner]; !ok {
				return fmt.Errorf("%w: label partner %q is not a pool role", ErrNotCompilable, o.Label.Partner)
			}
		}
		na := c.nextActive(cf.active, o.Label.Op, o.Label.Partner, o.Label.Origins())
		target := c.internConf(o.State, o.ID, na, c.internActive(na))
		succs = append(succs, csucc{
			op:      o.Label.Op,
			partner: o.Label.Partner,
			origins: o.Label.Origins(),
			target:  target,
		})
	}
	// internConf may have grown c.confs; re-read the pointer.
	cf = c.confs[id]
	cf.succs = succs
	cf.succsDone = true
	return nil
}

func (c *compiler) construct() (*DFA, error) {
	c.terms = nil
	c.texts = nil
	c.termRef = map[lts.StateID]int32{}
	c.activeSets = nil
	c.activeIdx = map[string]int32{}
	c.confIdx = map[uint64]int32{}

	emptyActive := c.internActive(nil)
	initID := c.sys.Intern(c.in.Initial)
	start := c.internConf(c.sys.Representative(c.in.Initial), initID, nil, emptyActive)

	failSyms := 1
	if c.in.StrictFailureTask {
		failSyms = len(c.tasks)
	}
	numSymbols := len(c.tasks)*len(c.classes) + failSyms

	var (
		states   []State
		sets     [][]int32
		delta    []int32
		stateIdx = map[string]int32{}
		queue    []int32
	)
	addState := func(members []int32) (int32, error) {
		key := memberKey(members)
		if id, ok := stateIdx[key]; ok {
			return id, nil
		}
		if len(states) >= c.maxStates {
			return 0, fmt.Errorf("%w: subset construction exceeds %d states", ErrNotCompilable, c.maxStates)
		}
		id := int32(len(states))
		states = append(states, State{Members: members})
		sets = append(sets, members)
		stateIdx[key] = id
		queue = append(queue, id)
		return id, nil
	}
	if _, err := addState([]int32{start}); err != nil {
		return nil, err
	}

	seen := map[int32]bool{}
	advance := func(members []int32, accept func(*conf) (absorb bool, fire func(*csucc) bool)) ([]int32, error) {
		clear(seen)
		var next []int32
		add := func(id int32) error {
			if seen[id] {
				return nil
			}
			if len(next) >= c.maxConfigs {
				return fmt.Errorf("%w: configuration set exceeds %d", ErrNotCompilable, c.maxConfigs)
			}
			seen[id] = true
			next = append(next, id)
			return nil
		}
		for _, id := range members {
			cf := c.confs[id]
			absorb, fire := accept(cf)
			// Algorithm 1 line 8: an absorbed entry keeps the
			// configuration as-is and fires nothing from it.
			if absorb {
				if err := add(id); err != nil {
					return nil, err
				}
				continue
			}
			if err := c.ensureSuccs(id); err != nil {
				return nil, err
			}
			cf = c.confs[id]
			for i := range cf.succs {
				s := &cf.succs[i]
				if !fire(s) {
					continue
				}
				if err := add(s.target); err != nil {
					return nil, err
				}
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		return next, nil
	}

	for len(queue) > 0 {
		sid := queue[0]
		queue = queue[1:]
		members := sets[sid]
		row := make([]int32, numSymbols)
		for i := range row {
			row[i] = Reject
		}
		// Success symbols: task × role class.
		for ti, task := range c.tasks {
			for ci, mask := range c.classes {
				next, err := advance(members, func(cf *conf) (bool, func(*csucc) bool) {
					absorb := false
					if !c.in.DisableAbsorption {
						for _, a := range cf.active {
							if a.Task == task && mask&(1<<c.poolIdx[a.Role]) != 0 {
								absorb = true
								break
							}
						}
					}
					return absorb, func(s *csucc) bool {
						return s.op == task && mask&(1<<c.poolIdx[s.partner]) != 0
					}
				})
				if err != nil {
					return nil, err
				}
				if len(next) == 0 {
					continue
				}
				nid, err := addState(next)
				if err != nil {
					return nil, err
				}
				row[ti*len(c.classes)+ci] = nid
			}
		}
		// Failure symbols: sys·Err, strictly matched by origin task.
		for fi := 0; fi < failSyms; fi++ {
			task := ""
			if c.in.StrictFailureTask {
				task = c.tasks[fi]
			}
			next, err := advance(members, func(cf *conf) (bool, func(*csucc) bool) {
				return false, func(s *csucc) bool {
					if s.op != "Err" {
						return false
					}
					if !c.in.StrictFailureTask {
						return true
					}
					for _, o := range s.origins {
						if o == task {
							return true
						}
					}
					return false
				}
			})
			if err != nil {
				return nil, err
			}
			if len(next) == 0 {
				continue
			}
			nid, err := addState(next)
			if err != nil {
				return nil, err
			}
			row[len(c.tasks)*len(c.classes)+fi] = nid
		}
		// The queue may have grown; rows are indexed by state id, so
		// grow delta in state order.
		for int(sid)*numSymbols >= len(delta) {
			delta = append(delta, row...)
		}
		copy(delta[int(sid)*numSymbols:], row)
	}
	if len(delta) != len(states)*numSymbols {
		// States enqueued but never popped would be a bug; every id is
		// popped exactly once, so delta is exactly full here.
		return nil, fmt.Errorf("%w: internal: delta %d != %d states × %d symbols", ErrNotCompilable, len(delta), len(states), numSymbols)
	}

	// Per-state verdict metadata.
	for i := range states {
		if err := c.finishState(&states[i]); err != nil {
			return nil, err
		}
	}

	taskRoles := make([]string, len(c.tasks))
	for i, t := range c.tasks {
		taskRoles[i] = c.taskRole[t]
	}
	configs := make([]Config, len(c.confs))
	for i, cf := range c.confs {
		configs[i] = Config{Term: cf.termRef, Active: cf.activeID}
	}
	return &DFA{
		Compiler:          CompilerVersion,
		Purpose:           c.in.Purpose,
		Strict:            c.in.StrictFailureTask,
		NoAbsorption:      c.in.DisableAbsorption,
		MaxConfigurations: c.maxConfigs,
		Tasks:             c.tasks,
		TaskRoles:         taskRoles,
		PoolRoles:         c.pools,
		Classes:           c.classes,
		RoleClass:         c.roleClass,
		ZeroClass:         c.zeroClass,
		Terms:             c.terms,
		Texts:             c.texts,
		ActiveSets:        c.activeSets,
		Configs:           configs,
		States:            states,
		Start:             0,
		Delta:             delta,
	}, nil
}

// finishState derives the verdict metadata of one determinized set:
// the completion bit and the violation/worklist views, rendered exactly
// as the interpreter renders them.
func (c *compiler) finishState(st *State) error {
	expected := map[string]bool{}
	activeSet := map[string]bool{}
	activePairs := map[Offer]bool{}
	firePairs := map[Offer]bool{}
	for _, id := range st.Members {
		if err := c.ensureSuccs(id); err != nil {
			return err
		}
		cf := c.confs[id]
		if !st.CanComplete {
			done, err := c.sys.CanTerminateSilently(cf.svc)
			if err != nil {
				return fmt.Errorf("%w: completion check: %v", ErrNotCompilable, err)
			}
			if done {
				st.CanComplete = true
			}
		}
		for i := range cf.succs {
			s := &cf.succs[i]
			if s.op == "Err" {
				expected["sys.Err("+joinPlus(s.origins)+")"] = true
			} else {
				expected[s.partner+"."+s.op] = true
				if c.hasTask[s.op] {
					firePairs[Offer{Role: s.partner, Task: s.op}] = true
				}
			}
		}
		for _, a := range cf.active {
			activeSet[a.String()] = true
			activePairs[Offer{Role: a.Role, Task: a.Task}] = true
		}
	}
	for l := range expected {
		st.Expected = append(st.Expected, l)
	}
	sort.Strings(st.Expected)
	for a := range activeSet {
		st.ActiveTasks = append(st.ActiveTasks, a)
	}
	sort.Strings(st.ActiveTasks)
	for o := range activePairs {
		st.Active = append(st.Active, o)
	}
	sortOffers(st.Active)
	for o := range firePairs {
		st.Fire = append(st.Fire, o)
	}
	sortOffers(st.Fire)
	return nil
}

func joinPlus(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += "+"
		}
		out += p
	}
	return out
}
