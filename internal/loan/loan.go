// Package loan is the purpose-control scenario outside healthcare used
// by examples/loanorigination, the differential tests and the fuzz
// corpus: a bank's loan-origination process in which credit bureau
// reports may be pulled to decide an application — not to build a
// prospecting list. A clerk pulling reports under fabricated
// application cases re-purposes the data exactly like the paper's
// cardiologist; every pull is individually authorized and Algorithm 1
// flags every fabricated case.
package loan

import (
	"time"

	"repro/internal/audit"
	"repro/internal/bpmn"
	"repro/internal/policy"
)

// Purpose and case-code constants.
const (
	PurposeName = "LoanOrigination"
	Code        = "LA"
)

// Process builds the loan-origination process: the intake clerk
// registers the application; credit analysis may fail (missing
// documents loop back to intake); underwriting orders income
// verification and/or collateral appraisal (inclusive); then the
// decision is made.
func Process() (*bpmn.Process, error) {
	return bpmn.NewBuilder(PurposeName).
		Pool("IntakeClerk").Pool("CreditAnalyst").Pool("Underwriter").
		Start("S1", "IntakeClerk").
		Task("L01", "IntakeClerk", "register application, collect documents").
		MessageEnd("E1", "IntakeClerk").
		MessageStart("S1b", "IntakeClerk").
		Seq("S1", "L01").Seq("S1b", "L01").Seq("L01", "E1").
		MessageStart("S2", "CreditAnalyst").
		FallibleTask("L02", "CreditAnalyst", "pull credit report, assess", "L02b").
		Task("L02b", "CreditAnalyst", "request missing documents").
		MessageEnd("E2", "CreditAnalyst").
		MessageEnd("E2b", "CreditAnalyst").
		Seq("S2", "L02").Seq("L02", "E2").Seq("L02b", "E2b").
		MessageStart("S3", "Underwriter").
		OR("G1", "Underwriter").
		Task("L03", "Underwriter", "verify income").
		Task("L04", "Underwriter", "appraise collateral").
		OR("J1", "Underwriter").
		Task("L05", "Underwriter", "decide application").
		End("E3", "Underwriter").
		Seq("S3", "G1").Seq("G1", "L03", "J1").Seq("G1", "L04", "J1").
		Seq("J1", "L05", "E3").
		PairOR("G1", "J1").
		Msg("E1", "S2").   // application forwarded to credit analysis
		Msg("E2", "S3").   // credit ok: to underwriting
		Msg("E2b", "S1b"). // documents missing: back to intake
		Build()
}

// Policy builds the bank's data protection policy; its Roles field
// carries the BankStaff hierarchy.
func Policy() (*policy.Policy, error) {
	return policy.ParsePolicyString(`
		role BankStaff
		role IntakeClerk   : BankStaff
		role CreditAnalyst : BankStaff
		role Underwriter   : BankStaff

		permit BankStaff     read  [*]Application          for LoanOrigination
		permit IntakeClerk   write [*]Application          for LoanOrigination
		permit CreditAnalyst read  [*]CreditReport         for LoanOrigination
		permit CreditAnalyst write [*]Application/Credit   for LoanOrigination
		permit Underwriter   write [*]Application/Decision for LoanOrigination
	`)
}

// Trail is the example's audit trail: one genuine application (LA-1)
// plus the harvesting attack (LA-501..LA-503, a fabricated case per
// pulled report).
func Trail() *audit.Trail {
	t0 := time.Date(2026, 7, 3, 9, 0, 0, 0, time.UTC)
	mk := func(min int, user, role, action, object, task, caseID string) audit.Entry {
		return audit.Entry{
			User: user, Role: role, Action: action,
			Object: policy.MustParseObject(object),
			Task:   task, Case: caseID,
			Time: t0.Add(time.Duration(min) * time.Minute), Status: audit.Success,
		}
	}
	genuine := []audit.Entry{
		mk(0, "ida", "IntakeClerk", "write", "[Kim]Application", "L01", "LA-1"),
		mk(10, "carl", "CreditAnalyst", "read", "[Kim]CreditReport", "L02", "LA-1"),
		mk(11, "carl", "CreditAnalyst", "write", "[Kim]Application/Credit", "L02", "LA-1"),
		mk(20, "uma", "Underwriter", "read", "[Kim]Application", "L03", "LA-1"),
		mk(25, "uma", "Underwriter", "read", "[Kim]Application", "L04", "LA-1"),
		mk(30, "uma", "Underwriter", "write", "[Kim]Application/Decision", "L05", "LA-1"),
	}
	harvest := []audit.Entry{
		mk(40, "carl", "CreditAnalyst", "read", "[Lee]CreditReport", "L02", "LA-501"),
		mk(41, "carl", "CreditAnalyst", "read", "[Mia]CreditReport", "L02", "LA-502"),
		mk(42, "carl", "CreditAnalyst", "read", "[Noa]CreditReport", "L02", "LA-503"),
	}
	return audit.NewTrail(append(genuine, harvest...))
}
