// Package wfm implements the transactional workflow substrate the paper
// assumes exists (Section 3.5: "most IT systems based on transactional
// systems such as WFM, ERP, CRM and B2B systems are able to record the
// task and the instance of the process"): an execution engine that runs
// registered organizational processes, offers per-case worklists derived
// from the live COWS semantics, enforces role assignment at execution
// time, and records every performed action in the audit database with
// the Definition 4 schema — task and case filled in by the system
// itself, exactly the provenance model the paper's framework relies on.
//
// Internally the engine state of a case IS the purpose-control
// configuration set (an internal/core Monitor), so an execution driven
// through the engine is compliant by construction, and the audit trail
// it emits replays cleanly through Algorithm 1 — the closed loop the
// paper describes between process execution and a-posteriori auditing.
package wfm

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/policy"
)

// Action is one data access performed within a task execution.
type Action struct {
	Verb   string // read, write, execute, ...
	Object policy.Object
}

// Engine executes process instances. Safe for concurrent use.
type Engine struct {
	mu      sync.Mutex
	reg     *core.Registry
	roles   *policy.RoleHierarchy
	monitor *core.Monitor
	log     *audit.Store
	now     func() time.Time
	seq     map[string]int // case counter per code
}

// New builds an engine over the registry. roles may be nil for exact
// role matching; clock nil means time.Now.
func New(reg *core.Registry, roles *policy.RoleHierarchy, clock func() time.Time) *Engine {
	if clock == nil {
		clock = time.Now
	}
	checker := core.NewChecker(reg, roles)
	return &Engine{
		reg:     reg,
		roles:   roles,
		monitor: core.NewMonitor(checker),
		log:     audit.NewStore(),
		now:     clock,
		seq:     map[string]int{},
	}
}

// Start creates a new instance of the purpose registered under the
// given case code and returns its case id.
func (e *Engine) Start(code string) (string, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.reg.ForCase(code+"-0") == nil {
		return "", fmt.Errorf("wfm: case code %q resolves no registered purpose", code)
	}
	e.seq[code]++
	caseID := fmt.Sprintf("%s-%d", code, e.seq[code])
	if err := e.monitor.Watch(caseID); err != nil {
		return "", fmt.Errorf("wfm: starting case %s: %w", caseID, err)
	}
	return caseID, nil
}

// Worklist returns the currently available work in the case: tasks that
// can start and tasks still active (able to absorb more actions), with
// the role each belongs to.
func (e *Engine) Worklist(caseID string) ([]core.Offer, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	offers, err := e.monitor.Enabled(caseID)
	if err != nil {
		return nil, fmt.Errorf("wfm: worklist of %s: %w", caseID, err)
	}
	return offers, nil
}

// roleMayPerform mirrors the checker's role matching.
func (e *Engine) roleMayPerform(userRole, poolRole string) bool {
	if userRole == poolRole {
		return true
	}
	return e.roles != nil && e.roles.Specializes(userRole, poolRole)
}

// Execute performs a task (one or more actions) as the given user/role.
// The engine refuses executions the process does not offer — it is the
// preventive twin of Algorithm 1: what the checker would flag, the
// engine will not let happen. Each action is logged as one entry.
func (e *Engine) Execute(caseID, user, role, task string, actions ...Action) error {
	if len(actions) == 0 {
		actions = []Action{{Verb: "execute"}}
	}
	e.mu.Lock()
	defer e.mu.Unlock()

	offers, err := e.monitor.Enabled(caseID)
	if err != nil {
		return fmt.Errorf("wfm: executing %s in %s: %w", task, caseID, err)
	}
	offered := false
	for _, o := range offers {
		if o.Task == task && e.roleMayPerform(role, o.Role) {
			offered = true
			break
		}
	}
	if !offered {
		return fmt.Errorf("wfm: task %q is not available to role %q in case %s (worklist: %v)",
			task, role, caseID, offers)
	}

	for _, a := range actions {
		entry := audit.Entry{
			User: user, Role: role, Action: a.Verb, Object: a.Object,
			Task: task, Case: caseID, Time: e.now(), Status: audit.Success,
		}
		// Dry-run first so a refused operation never poisons the live
		// case state (Feed marks deviations permanently).
		ok, err := e.monitor.Peek(entry)
		if err != nil {
			return fmt.Errorf("wfm: executing %s in %s: %w", task, caseID, err)
		}
		if !ok {
			return fmt.Errorf("wfm: engine refused %s/%s in case %s", task, a.Verb, caseID)
		}
		if _, err := e.monitor.Feed(entry); err != nil {
			return fmt.Errorf("wfm: executing %s in %s: %w", task, caseID, err)
		}
		if err := e.log.Append(entry); err != nil {
			return fmt.Errorf("wfm: logging execution: %w", err)
		}
	}
	return nil
}

// Fail records a task failure (the task must be active or startable and
// must have an error boundary; otherwise the process cannot proceed and
// Fail returns an error).
func (e *Engine) Fail(caseID, user, role, task string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	entry := audit.Entry{
		User: user, Role: role, Action: "cancel",
		Task: task, Case: caseID, Time: e.now(), Status: audit.Failure,
	}
	ok, err := e.monitor.Peek(entry)
	if err != nil {
		return fmt.Errorf("wfm: failing %s in %s: %w", task, caseID, err)
	}
	if !ok {
		return fmt.Errorf("wfm: failure of %q not allowed in case %s (no reachable error boundary)", task, caseID)
	}
	if _, err := e.monitor.Feed(entry); err != nil {
		return fmt.Errorf("wfm: failing %s in %s: %w", task, caseID, err)
	}
	if err := e.log.Append(entry); err != nil {
		return fmt.Errorf("wfm: logging failure: %w", err)
	}
	return nil
}

// CaseStatus reports the case's live state.
func (e *Engine) CaseStatus(caseID string) (core.CaseStatus, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	sts, err := e.monitor.Status()
	if err != nil {
		return core.CaseStatus{}, err
	}
	for _, st := range sts {
		if st.Case == caseID {
			return st, nil
		}
	}
	return core.CaseStatus{}, fmt.Errorf("wfm: unknown case %s", caseID)
}

// AuditStore exposes the audit database the engine wrote — the input to
// the a-posteriori analysis.
func (e *Engine) AuditStore() *audit.Store { return e.log }
