package wfm

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hospital"
	"repro/internal/policy"
)

func fakeClock() func() time.Time {
	t := time.Date(2026, 5, 2, 8, 0, 0, 0, time.UTC)
	return func() time.Time {
		t = t.Add(time.Minute)
		return t
	}
}

func hospitalEngine(t *testing.T) (*Engine, *core.Registry) {
	t.Helper()
	sc, err := hospital.NewScenario()
	if err != nil {
		t.Fatal(err)
	}
	roles, err := hospital.Roles()
	if err != nil {
		t.Fatal(err)
	}
	return New(sc.Registry, roles, fakeClock()), sc.Registry
}

func janeClinical() policy.Object {
	return policy.MustParseObject("[Jane]EPR/Clinical")
}

func TestEngineRunsTreatmentCase(t *testing.T) {
	eng, reg := hospitalEngine(t)
	caseID, err := eng.Start(hospital.TreatmentCode)
	if err != nil {
		t.Fatal(err)
	}
	if caseID != "HT-1" {
		t.Fatalf("caseID = %s", caseID)
	}

	// Fresh case: only the GP's first task is offered.
	offers, err := eng.Worklist(caseID)
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 1 || offers[0].Task != "T01" || offers[0].Role != "GP" || offers[0].Active {
		t.Fatalf("initial worklist = %+v", offers)
	}

	// Run the straight-through path: T01, T02, T03, T04.
	steps := []struct {
		user, role, task string
		actions          []Action
	}{
		{"John", "GP", "T01", []Action{{Verb: "read", Object: janeClinical()}}},
		{"John", "GP", "T02", []Action{{Verb: "write", Object: janeClinical()}, {Verb: "write", Object: janeClinical()}}},
		{"John", "GP", "T03", []Action{{Verb: "write", Object: janeClinical()}}},
		{"John", "GP", "T04", []Action{{Verb: "write", Object: janeClinical()}}},
	}
	for _, s := range steps {
		if err := eng.Execute(caseID, s.user, s.role, s.task, s.actions...); err != nil {
			t.Fatalf("Execute(%s): %v", s.task, err)
		}
	}
	st, err := eng.CaseStatus(caseID)
	if err != nil {
		t.Fatal(err)
	}
	if !st.CanComplete || st.Deviated {
		t.Fatalf("status = %+v", st)
	}

	// The engine's own trail replays cleanly through Algorithm 1.
	roles, _ := hospital.Roles()
	checker := core.NewChecker(reg, roles)
	rep, err := checker.CheckCase(eng.AuditStore().Trail(), caseID)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Compliant || !rep.CanComplete {
		t.Fatalf("engine trail rejected: %s", rep)
	}
	// 5 entries: T01×1, T02×2, T03×1, T04×1.
	if got := eng.AuditStore().Len(); got != 5 {
		t.Fatalf("logged %d entries, want 5", got)
	}
}

func TestEngineRefusesInvalidWork(t *testing.T) {
	eng, _ := hospitalEngine(t)
	caseID, err := eng.Start(hospital.TreatmentCode)
	if err != nil {
		t.Fatal(err)
	}

	// T06 is not offered at case start — this is exactly the paper's
	// HT-11 attack, stopped up front by the engine.
	err = eng.Execute(caseID, "Bob", "Cardiologist", "T06", Action{Verb: "read", Object: janeClinical()})
	if err == nil || !strings.Contains(err.Error(), "not available") {
		t.Fatalf("mid-process start accepted: %v", err)
	}
	// Wrong role for an offered task.
	err = eng.Execute(caseID, "Bob", "Cardiologist", "T01", Action{Verb: "read", Object: janeClinical()})
	if err == nil {
		t.Fatalf("wrong role accepted")
	}
	// The refusals must not have poisoned the case: T01 still works.
	if err := eng.Execute(caseID, "John", "GP", "T01", Action{Verb: "read", Object: janeClinical()}); err != nil {
		t.Fatalf("case poisoned by refusals: %v", err)
	}
	// Unknown case / code.
	if _, err := eng.Start("ZZ"); err == nil {
		t.Fatalf("unknown code accepted")
	}
	if err := eng.Execute("ZZ-1", "u", "GP", "T01"); err == nil {
		t.Fatalf("unknown case accepted")
	}
}

func TestEngineFailureHandling(t *testing.T) {
	eng, _ := hospitalEngine(t)
	caseID, err := eng.Start(hospital.TreatmentCode)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Execute(caseID, "John", "GP", "T01", Action{Verb: "read", Object: janeClinical()}); err != nil {
		t.Fatal(err)
	}
	// T01 has no error boundary: failing it is refused.
	if err := eng.Fail(caseID, "John", "GP", "T01"); err == nil {
		t.Fatalf("failure without boundary accepted")
	}
	// T02 has one: execute then fail, then the process restarts at T01.
	if err := eng.Execute(caseID, "John", "GP", "T02", Action{Verb: "write", Object: janeClinical()}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Fail(caseID, "John", "GP", "T02"); err != nil {
		t.Fatalf("legitimate failure refused: %v", err)
	}
	offers, err := eng.Worklist(caseID)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, o := range offers {
		if o.Task == "T01" && !o.Active {
			found = true
		}
	}
	if !found {
		t.Fatalf("post-failure worklist = %+v, want T01 startable", offers)
	}
}

func TestEngineCrossPoolFlow(t *testing.T) {
	eng, reg := hospitalEngine(t)
	caseID, err := eng.Start(hospital.TreatmentCode)
	if err != nil {
		t.Fatal(err)
	}
	// Referral path: GP refers, cardiologist examines, orders scans,
	// radiology runs them, results come back.
	seq := []struct {
		user, role, task string
	}{
		{"John", "GP", "T01"},
		{"John", "GP", "T05"},
		{"Bob", "Cardiologist", "T06"},
		{"Bob", "Cardiologist", "T09"},
		{"Charlie", "Radiologist", "T10"},
		{"Charlie", "Radiologist", "T11"},
		{"Charlie", "Radiologist", "T12"},
		{"Bob", "Cardiologist", "T06"},
		{"Bob", "Cardiologist", "T07"},
		{"John", "GP", "T01"},
		{"John", "GP", "T02"},
		{"John", "GP", "T03"},
		{"John", "GP", "T04"},
	}
	for i, s := range seq {
		if err := eng.Execute(caseID, s.user, s.role, s.task, Action{Verb: "read", Object: janeClinical()}); err != nil {
			t.Fatalf("step %d (%s): %v", i, s.task, err)
		}
	}
	st, err := eng.CaseStatus(caseID)
	if err != nil || !st.CanComplete {
		t.Fatalf("status = %+v, %v", st, err)
	}
	// Worklists moved across pools: after T09, radiology work appears.
	caseID2, _ := eng.Start(hospital.TreatmentCode)
	for _, task := range []string{"T01", "T05", "T06", "T09"} {
		user, role := "John", "GP"
		if task == "T06" || task == "T09" {
			user, role = "Bob", "Cardiologist"
		}
		if err := eng.Execute(caseID2, user, role, task, Action{Verb: "read", Object: janeClinical()}); err != nil {
			t.Fatal(err)
		}
	}
	offers, err := eng.Worklist(caseID2)
	if err != nil {
		t.Fatal(err)
	}
	radiology := false
	for _, o := range offers {
		if o.Role == "Radiologist" && o.Task == "T10" {
			radiology = true
		}
	}
	if !radiology {
		t.Fatalf("worklist after T09 = %+v, want Radiologist/T10", offers)
	}
	_ = reg
}

func TestEngineCaseIDsIncrement(t *testing.T) {
	eng, _ := hospitalEngine(t)
	a, _ := eng.Start(hospital.TreatmentCode)
	b, _ := eng.Start(hospital.TreatmentCode)
	c, _ := eng.Start(hospital.TrialCode)
	if a != "HT-1" || b != "HT-2" || c != "CT-1" {
		t.Fatalf("ids = %s %s %s", a, b, c)
	}
}
