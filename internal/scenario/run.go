package scenario

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/automaton"
	"repro/internal/core"
	"repro/internal/policy"
)

// Options tunes a corpus run.
type Options struct {
	// CoverMin, when positive, is the minimum DFA state-coverage
	// percentage each fixture's trails must reach (over the dense,
	// non-minimized automaton — the stable state space). Fixtures whose
	// purpose legitimately fell back to the interpreter (AllowFallback)
	// are exempt: there is no table to cover.
	CoverMin float64
	// SkipExpectations replays and engine-compares without checking the
	// trails' declared verdicts. The scenario fuzzer uses it: a mutated
	// trail has no known-correct verdict, but the engines must still
	// agree on whatever it is.
	SkipExpectations bool
}

// Result is the outcome of running one fixture.
type Result struct {
	Fixture *Fixture
	Trails  []TrailResult
	// Coverage is the per-automaton coverage accumulated across every
	// trail, from the dense compiled checker.
	Coverage []automaton.CoverageReport
	// Failures collects every assertion that did not hold; empty means
	// the fixture passed.
	Failures []string
}

// TrailResult is one trail's replay outcome.
type TrailResult struct {
	Name string
	Case string
	// Report is the interpreter's report (the reference the engines
	// were compared against).
	Report *core.Report
	// Render is the canonical byte-compared rendering.
	Render string
}

// OK reports whether every assertion in the fixture held.
func (r *Result) OK() bool { return len(r.Failures) == 0 }

// engines are the three replay configurations every trail runs through.
var engines = []struct {
	name     string
	compiled bool
	minimize bool
}{
	{"interpreted", false, false},
	{"compiled", true, false},
	{"minimized", true, true},
}

// Run replays every trail of the fixture through the interpreter, the
// compiled automaton and the minimized automaton, byte-compares the
// three reports, and checks the trail's declared expectations against
// the result. Setup problems (unparsable process, bad policy, bad
// timestamps) return an error; assertion failures land in
// Result.Failures so a corpus runner can keep going and report all of
// them.
func Run(fx *Fixture, opts Options) (*Result, error) {
	proc, err := fx.process()
	if err != nil {
		return nil, fmt.Errorf("fixture %q: process: %w", fx.Name, err)
	}
	pol, err := fx.policyOf()
	if err != nil {
		return nil, fmt.Errorf("fixture %q: policy: %w", fx.Name, err)
	}
	reg := core.NewRegistry()
	if _, err := reg.Register(proc, fx.CaseCodes...); err != nil {
		return nil, fmt.Errorf("fixture %q: register: %w", fx.Name, err)
	}

	// Three independent checkers: the compiled slot is keyed by flag
	// set, so dense and minimized runs must not share a runtime — a
	// shared one would silently fall back for whichever asked second.
	checkers := make([]*core.Checker, len(engines))
	for i, eng := range engines {
		c := core.NewChecker(reg, rolesOf(pol))
		fx.applyChecker(c)
		c.UseCompiled = eng.compiled
		c.MinimizeAutomata = eng.minimize
		checkers[i] = c
	}
	cov := automaton.NewCoverageSet()
	checkers[1].Coverage = cov // dense compiled: the stable state space

	res := &Result{Fixture: fx}
	for ti := range fx.Trails {
		tr := &fx.Trails[ti]
		trail, err := tr.trail()
		if err != nil {
			return nil, fmt.Errorf("fixture %q: %w", fx.Name, err)
		}
		var reports [3]*core.Report
		var renders [3]string
		for i, c := range checkers {
			rep, err := c.CheckCase(trail, tr.Case)
			if err != nil {
				return nil, fmt.Errorf("fixture %q trail %s: %s engine: %w", fx.Name, tr.Name, engines[i].name, err)
			}
			reports[i], renders[i] = rep, renderReport(rep)
		}
		tres := TrailResult{Name: tr.Name, Case: tr.Case, Report: reports[0], Render: renders[0]}
		res.Trails = append(res.Trails, tres)

		fail := func(format string, args ...any) {
			res.Failures = append(res.Failures,
				fmt.Sprintf("%s/%s: ", fx.Name, tr.Name)+fmt.Sprintf(format, args...))
		}
		for i := 1; i < len(renders); i++ {
			if renders[i] != renders[0] {
				fail("%s report differs from interpreted:\n%s", engines[i].name, diffRenders(renders[0], renders[i]))
			}
			if fb := reports[i].EngineFallback; fb != "" && !fx.AllowFallback {
				fail("%s engine fell back to the interpreter (%s); set allow_fallback if intended", engines[i].name, fb)
			}
		}
		if !opts.SkipExpectations {
			checkExpect(tr, reports[0], fail)
		}
	}

	res.Coverage = cov.Reports()
	if opts.CoverMin > 0 {
		for _, cr := range res.Coverage {
			if pct := cr.StatePct(); pct < opts.CoverMin {
				res.Failures = append(res.Failures, fmt.Sprintf(
					"%s: DFA state coverage %.1f%% below floor %.1f%% (%s) — add trails exercising the uncovered branches",
					fx.Name, pct, opts.CoverMin, cr))
			}
		}
		if len(res.Coverage) == 0 && !fx.AllowFallback {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"%s: no DFA coverage was collected (compiled engine never ran)", fx.Name))
		}
	}
	return res, nil
}

// rolesOf unwraps the policy's role hierarchy; a nil policy means
// exact role matching.
func rolesOf(pol *policy.Policy) *policy.RoleHierarchy {
	if pol == nil {
		return nil
	}
	return pol.Roles
}

// checkExpect asserts one trail's expectations against the reference
// report.
func checkExpect(tr *TrailSpec, rep *core.Report, fail func(string, ...any)) {
	want := verdicts[tr.Expect.Verdict]
	if rep.Outcome != want {
		got := rep.Outcome.String()
		if x := rep.Explanation; x != nil {
			got += " (" + x.Reason + ")"
		}
		fail("verdict = %s, want %s", got, tr.Expect.Verdict)
		return
	}
	if p := tr.Expect.Pending; p != nil && rep.Pending != *p {
		fail("pending = %v, want %v", rep.Pending, *p)
	}
	d := tr.Expect.Deviation
	if d == nil {
		return
	}
	x := rep.Explanation
	if x == nil {
		fail("expected a deviation but the report has no explanation")
		return
	}
	if x.EntryIndex != d.Entry {
		fail("deviation entry = %d (%s), want %d", x.EntryIndex, x.Task, d.Entry)
	}
	if d.Task != "" && x.Task != d.Task {
		fail("deviation task = %q, want %q", x.Task, d.Task)
	}
	if d.Class != "" && x.NearestMissClass != d.Class {
		fail("deviation class = %q, want %q (%s)", x.NearestMissClass, d.Class, x.NearestMiss)
	}
}

// applyChecker applies the fixture's knobs to a fresh checker.
func (fx *Fixture) applyChecker(c *core.Checker) {
	cs := fx.Checker
	if cs == nil {
		return
	}
	if cs.StrictFailureTask != nil {
		c.StrictFailureTask = *cs.StrictFailureTask
	}
	c.DisableAbsorption = cs.DisableAbsorption
	c.MaxConfigurations = cs.MaxConfigurations
	c.MaxSilentDepth = cs.MaxSilentDepth
}

// renderReport is the canonical engine-neutral rendering the runner
// byte-compares. It covers every verdict-bearing report field — the
// engine marker and fallback cause are the only exclusions, since they
// are *supposed* to differ across engines.
func renderReport(rep *core.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "case: %s\npurpose: %s\noutcome: %s\ncompliant: %v\npending: %v\ncan_complete: %v\n",
		rep.Case, rep.Purpose, rep.Outcome, rep.Compliant, rep.Pending, rep.CanComplete)
	fmt.Fprintf(&b, "entries: %d\nsteps_replayed: %d\npeak_configurations: %d\nfinal_configurations: %d\n",
		rep.Entries, rep.StepsReplayed, rep.PeakConfigurations, rep.FinalConfigurations)
	if rep.Violation != nil {
		fmt.Fprintf(&b, "violation: %s\n", rep.Violation)
	}
	if rep.Indeterminate != nil {
		fmt.Fprintf(&b, "indeterminate: %s\n", rep.Indeterminate)
	}
	if rep.Explanation != nil {
		// JSON gives the explanation a stable field-by-field encoding;
		// any drift (a class set by one engine only, a different
		// expected set) shows up as a byte diff.
		j, err := json.Marshal(rep.Explanation)
		if err != nil {
			j = []byte(fmt.Sprintf("%+v", rep.Explanation))
		}
		fmt.Fprintf(&b, "explanation: %s\n", j)
	}
	return b.String()
}

// diffRenders points at the first differing line of two renders, so an
// engine-divergence failure names the field instead of dumping both
// reports.
func diffRenders(ref, got string) string {
	rl, gl := strings.Split(ref, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(rl) || i < len(gl); i++ {
		var r, g string
		if i < len(rl) {
			r = rl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if r != g {
			return fmt.Sprintf("  interpreted: %s\n  got:         %s", r, g)
		}
	}
	return "  (renders equal?)"
}
