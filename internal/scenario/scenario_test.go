package scenario_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bpmn"
	"repro/internal/scenario"
)

// CorpusCoverMin is the state-coverage floor the checked-in corpus must
// clear; ci.sh passes the same floor to purposectl test.
const CorpusCoverMin = 60.0

// TestCorpus runs the repository's checked-in scenario corpus, so plain
// `go test ./...` gates it even without the purposectl runner.
func TestCorpus(t *testing.T) {
	files, err := scenario.Discover([]string{"../../scenarios/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 5 {
		t.Fatalf("corpus has %d fixtures, want at least the 5 shipped domains", len(files))
	}
	for _, file := range files {
		fx, err := scenario.Load(file)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(fx.Name, func(t *testing.T) {
			res, err := scenario.Run(fx, scenario.Options{CoverMin: CorpusCoverMin})
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range res.Failures {
				t.Error(f)
			}
			if len(res.Trails) != len(fx.Trails) {
				t.Errorf("ran %d trails, fixture has %d", len(res.Trails), len(fx.Trails))
			}
		})
	}
}

// writeFixture marshals a fixture to a temp .scenario.json file.
func writeFixture(t *testing.T, fx map[string]any) string {
	t.Helper()
	b, err := json.MarshalIndent(fx, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fx"+scenario.Ext)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// minimalProcess is a one-task process spec as generic JSON.
func minimalProcess() map[string]any {
	return map[string]any{
		"name":  "Mini",
		"pools": []string{"Ops"},
		"elements": []map[string]any{
			{"id": "S1", "kind": "start", "pool": "Ops"},
			{"id": "T01", "kind": "task", "pool": "Ops", "name": "Do the thing"},
			{"id": "E1", "kind": "end", "pool": "Ops"},
		},
		"flows": []map[string]any{
			{"from": "S1", "to": "T01", "kind": "sequence"},
			{"from": "T01", "to": "E1", "kind": "sequence"},
		},
	}
}

func minimalFixture() map[string]any {
	return map[string]any{
		"name":       "mini",
		"process":    minimalProcess(),
		"case_codes": []string{"MI"},
		"trails": []map[string]any{{
			"name": "ok",
			"case": "MI-1",
			"entries": []map[string]any{
				{"time": "202608080900", "user": "u1", "role": "Ops", "task": "T01"},
			},
			"expect": map[string]any{"verdict": "compliant"},
		}},
	}
}

func TestLoadRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(fx map[string]any)
		want string
	}{
		{"unknown-field", func(fx map[string]any) { fx["expct"] = true }, "unknown field"},
		{"missing-name", func(fx map[string]any) { delete(fx, "name") }, "missing name"},
		{"no-process", func(fx map[string]any) { delete(fx, "process") }, "exactly one of process"},
		{"both-processes", func(fx map[string]any) { fx["process_file"] = "x.json" }, "exactly one of process"},
		{"no-case-codes", func(fx map[string]any) { fx["case_codes"] = []string{} }, "no case_codes"},
		{"dashed-case-code", func(fx map[string]any) { fx["case_codes"] = []string{"MI-1"} }, "bad case code"},
		{"no-trails", func(fx map[string]any) { fx["trails"] = []any{} }, "no trails"},
		{"bad-verdict", func(fx map[string]any) {
			trail(fx)["expect"] = map[string]any{"verdict": "maybe"}
		}, `verdict "maybe"`},
		{"compliant-with-deviation", func(fx map[string]any) {
			trail(fx)["expect"] = map[string]any{
				"verdict":   "compliant",
				"deviation": map[string]any{"entry": 0},
			}
		}, "cannot expect a deviation"},
		{"no-entries", func(fx map[string]any) { trail(fx)["entries"] = []any{} }, "no entries"},
		{"entry-missing-task", func(fx map[string]any) {
			trail(fx)["entries"] = []map[string]any{{"time": "202608080900", "user": "u1", "role": "Ops"}}
		}, "time, role and task are required"},
		{"bad-status", func(fx map[string]any) {
			trail(fx)["entries"] = []map[string]any{
				{"time": "202608080900", "user": "u1", "role": "Ops", "task": "T01", "status": "meh"},
			}
		}, "status"},
		{"duplicate-trail", func(fx map[string]any) {
			fx["trails"] = []any{trail(fx), trail(fx)}
		}, "duplicate trail name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fx := minimalFixture()
			tc.mut(fx)
			_, err := scenario.Load(writeFixture(t, fx))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// trail returns the fixture's first trail map (for mutation).
func trail(fx map[string]any) map[string]any {
	return fx["trails"].([]map[string]any)[0]
}

func TestLoadRoundTrip(t *testing.T) {
	fx, err := scenario.Load(writeFixture(t, minimalFixture()))
	if err != nil {
		t.Fatal(err)
	}
	if fx.Name != "mini" || len(fx.Trails) != 1 || fx.Path == "" {
		t.Fatalf("loaded fixture %+v", fx)
	}
	res, err := scenario.Run(fx, scenario.Options{CoverMin: 99})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("mini fixture failed: %v", res.Failures)
	}
	if len(res.Coverage) != 1 || res.Coverage[0].States == 0 {
		t.Fatalf("no coverage collected: %+v", res.Coverage)
	}
}

func TestRunFlagsExpectationMismatch(t *testing.T) {
	fx := fixtureFromJSON(t, minimalFixture())
	fx.Trails[0].Expect.Verdict = "violation"
	res, err := scenario.Run(fx, scenario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() || !strings.Contains(res.Failures[0], "verdict = compliant, want violation") {
		t.Fatalf("failures = %v", res.Failures)
	}

	// SkipExpectations turns the same mismatch into a pass.
	res, err = scenario.Run(fx, scenario.Options{SkipExpectations: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("SkipExpectations still failed: %v", res.Failures)
	}
}

func TestRunFlagsDeviationMismatch(t *testing.T) {
	fx := fixtureFromJSON(t, minimalFixture())
	fx.Trails[0].Entries[0].Role = "Nobody"
	fx.Trails[0].Expect.Verdict = "violation"
	fx.Trails[0].Expect.Deviation = &scenario.DeviationSpec{Entry: 0, Task: "T01", Class: "out-of-order"}
	res, err := scenario.Run(fx, scenario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("wrong deviation class passed")
	}
	if !strings.Contains(strings.Join(res.Failures, "\n"), `class = "wrong-role", want "out-of-order"`) {
		t.Fatalf("failures = %v", res.Failures)
	}
}

func TestRunFlagsUnexpectedFallback(t *testing.T) {
	// A gateway behind the start makes the silent closure two moves
	// deep, so a silent-depth budget of 1 starves the analysis and the
	// purpose refuses to compile — the compiled engines must fall back.
	m := minimalFixture()
	m["process"] = map[string]any{
		"name":  "Mini",
		"pools": []string{"Ops"},
		"elements": []map[string]any{
			{"id": "S1", "kind": "start", "pool": "Ops"},
			{"id": "G1", "kind": "xor", "pool": "Ops"},
			{"id": "T01", "kind": "task", "pool": "Ops", "name": "Left"},
			{"id": "T02", "kind": "task", "pool": "Ops", "name": "Right"},
			{"id": "J1", "kind": "xor", "pool": "Ops"},
			{"id": "E1", "kind": "end", "pool": "Ops"},
		},
		"flows": []map[string]any{
			{"from": "S1", "to": "G1", "kind": "sequence"},
			{"from": "G1", "to": "T01", "kind": "sequence"},
			{"from": "G1", "to": "T02", "kind": "sequence"},
			{"from": "T01", "to": "J1", "kind": "sequence"},
			{"from": "T02", "to": "J1", "kind": "sequence"},
			{"from": "J1", "to": "E1", "kind": "sequence"},
		},
	}
	fx := fixtureFromJSON(t, m)
	fx.Checker = &scenario.CheckerSpec{MaxSilentDepth: 1}
	fx.Trails[0].Expect.Verdict = "indeterminate"
	res, err := scenario.Run(fx, scenario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() || !strings.Contains(strings.Join(res.Failures, "\n"), "fell back to the interpreter") {
		t.Fatalf("failures = %v", res.Failures)
	}

	fx.AllowFallback = true
	res, err = scenario.Run(fx, scenario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("allow_fallback run failed: %v", res.Failures)
	}
}

func TestRunCoverageFloor(t *testing.T) {
	fx := fixtureFromJSON(t, minimalFixture())
	// The single-entry trail leaves the end-state transition dark only
	// if the DFA has more than the visited states; a 100.01 floor is
	// unreachable by construction either way.
	res, err := scenario.Run(fx, scenario.Options{CoverMin: 100.01})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() || !strings.Contains(res.Failures[len(res.Failures)-1], "state coverage") {
		t.Fatalf("failures = %v", res.Failures)
	}
}

// fixtureFromJSON loads the generic-JSON fixture through the real
// parser so tests mutate a validated Fixture.
func fixtureFromJSON(t *testing.T, m map[string]any) *scenario.Fixture {
	t.Helper()
	fx, err := scenario.Load(writeFixture(t, m))
	if err != nil {
		t.Fatal(err)
	}
	return fx
}

func TestProcessFileFixture(t *testing.T) {
	dir := t.TempDir()
	// Write the process as its own interchange file next to the fixture.
	pb, err := json.Marshal(minimalProcess())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "mini.json"), pb, 0o644); err != nil {
		t.Fatal(err)
	}
	fxm := minimalFixture()
	delete(fxm, "process")
	fxm["process_file"] = "mini.json"
	b, err := json.Marshal(fxm)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "mini"+scenario.Ext)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	fx, err := scenario.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scenario.Run(fx, scenario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("process_file fixture failed: %v", res.Failures)
	}
}

func TestDiscover(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "sub")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{
		filepath.Join(dir, "a"+scenario.Ext),
		filepath.Join(sub, "b"+scenario.Ext),
		filepath.Join(dir, "ignored.json"),
	} {
		if err := os.WriteFile(p, []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	got, err := scenario.Discover([]string{dir + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("recursive discover = %v, want a and sub/b", got)
	}

	got, err = scenario.Discover([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !strings.HasSuffix(got[0], "a"+scenario.Ext) {
		t.Fatalf("non-recursive discover = %v, want only a", got)
	}

	// Explicit files pass through and duplicates collapse.
	got, err = scenario.Discover([]string{filepath.Join(dir, "a"+scenario.Ext), dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("dedup discover = %v", got)
	}

	if _, err := scenario.Discover([]string{filepath.Join(dir, "empty-none")}); err == nil {
		t.Fatal("missing path did not error")
	}
	empty := filepath.Join(dir, "empty")
	if err := os.MkdirAll(empty, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := scenario.Discover([]string{empty}); err == nil || !strings.Contains(err.Error(), "no .scenario.json") {
		t.Fatalf("empty dir: err = %v", err)
	}
}

// TestSpecRoundTrip pins the fixture's inline process format to the
// bpmn interchange: what EncodeJSON writes, a fixture can embed.
func TestSpecRoundTrip(t *testing.T) {
	fx := fixtureFromJSON(t, minimalFixture())
	proc, err := bpmn.FromSpec(*fx.Process)
	if err != nil {
		t.Fatal(err)
	}
	if proc.Name != "Mini" || len(proc.Tasks()) != 1 {
		t.Fatalf("embedded spec decoded to %+v", proc)
	}
}
