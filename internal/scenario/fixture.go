// Package scenario implements the declarative purpose-test framework:
// JSON fixtures pairing a BPMN process, a policy fragment, and annotated
// audit trails that declare both the expected verdict and the expected
// first deviation. The runner (Run) replays every trail through the
// interpreter, the compiled automaton, and the minimized automaton,
// requires byte-identical reports across all three, and accumulates DFA
// state/edge coverage so CI can gate on how much of each purpose's
// behaviour space the corpus actually visits.
//
// The paper validates purpose control against a single hospital process
// (Figure 4); this package is how the repo grows "as many scenarios as
// you can imagine" without each domain hand-writing a Go test. A fixture
// is one *.scenario.json file; `purposectl test ./scenarios/...` runs a
// corpus.
package scenario

import (
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/audit"
	"repro/internal/bpmn"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/policy"
)

// Ext is the fixture file suffix Discover looks for.
const Ext = ".scenario.json"

// Fixture is one declarative purpose-test: a process, the policy
// fragment it runs under, and annotated trails.
type Fixture struct {
	// Name identifies the fixture in runner output; conventionally the
	// file basename without the .scenario.json suffix.
	Name string `json:"name"`
	// Description says what the fixture exercises (OR-gateways, retry
	// paths, strict failure semantics, ...). Shown with -v.
	Description string `json:"description,omitempty"`
	// Process is the inline BPMN interchange spec. Exactly one of
	// Process and ProcessFile must be set.
	Process *bpmn.Spec `json:"process,omitempty"`
	// ProcessFile names a .json (interchange) or .bpmn/.xml (OMG XML)
	// process file, relative to the fixture's directory.
	ProcessFile string `json:"process_file,omitempty"`
	// CaseCodes are the case-number prefixes bound to the process
	// (Registry.Register); "IC" makes case "IC-1" replay this purpose.
	CaseCodes []string `json:"case_codes"`
	// Policy is a policy-file fragment, one directive per element
	// (internal/policy syntax: "role Senior : Junior", "permit ...").
	// The role hierarchy feeds the checkers; full fixtures may also
	// declare permits for documentation value.
	Policy []string `json:"policy,omitempty"`
	// Checker tunes analysis knobs for every trail in the fixture.
	Checker *CheckerSpec `json:"checker,omitempty"`
	// AllowFallback accepts the compiled engines falling back to the
	// interpreter (e.g. a configuration cap making the purpose
	// non-compilable). Default false: a silent fallback would let the
	// "both engines agree" claim degenerate into the interpreter
	// agreeing with itself.
	AllowFallback bool `json:"allow_fallback,omitempty"`
	// Trails are the annotated replays.
	Trails []TrailSpec `json:"trails"`

	// Path is the file the fixture was loaded from (set by Load).
	Path string `json:"-"`
}

// CheckerSpec overrides core.Checker knobs for a fixture.
type CheckerSpec struct {
	// StrictFailureTask defaults to true (the repo-wide default);
	// fixtures probing the paper's laxer line-10 semantics set false.
	StrictFailureTask *bool `json:"strict_failure_task,omitempty"`
	DisableAbsorption bool  `json:"disable_absorption,omitempty"`
	MaxConfigurations int   `json:"max_configurations,omitempty"`
	MaxSilentDepth    int   `json:"max_silent_depth,omitempty"`
}

// TrailSpec is one annotated replay: a case's entries plus the verdict
// and first-deviation the engines must produce.
type TrailSpec struct {
	Name string `json:"name"`
	// Case is the case identifier replayed; its prefix before '-' must
	// be one of the fixture's case codes, unless the trail deliberately
	// exercises the unknown-purpose path.
	Case    string      `json:"case"`
	Entries []EntrySpec `json:"entries"`
	Expect  Expectation `json:"expect"`
}

// EntrySpec is the JSON form of one audit entry.
type EntrySpec struct {
	// Time is the paper's 12-digit layout (200601021504) or RFC 3339.
	Time string `json:"time"`
	User string `json:"user"`
	Role string `json:"role"`
	// Action defaults to "access" — fixtures asserting replay semantics
	// rarely care which CRUD verb was logged.
	Action string `json:"action,omitempty"`
	// Object is the accessed object in policy syntax (e.g.
	// "/EPR/Bob/MedicalHistory"); empty entries replay fine, the object
	// only matters to object-scoped audits.
	Object string `json:"object,omitempty"`
	Task   string `json:"task"`
	// Case overrides the trail's case for this entry (noise entries
	// from other cases are legal in an audit trail).
	Case string `json:"case,omitempty"`
	// Status is "success" (default) or "failure".
	Status string `json:"status,omitempty"`
}

// Expectation declares the verdict a trail must produce.
type Expectation struct {
	// Verdict is "compliant", "violation" or "indeterminate".
	Verdict string `json:"verdict"`
	// Pending, when set, additionally asserts Report.Pending — whether
	// a compliant case is mid-flight or ran to completion.
	Pending *bool `json:"pending,omitempty"`
	// Deviation asserts the first-deviation account for violation and
	// indeterminate verdicts.
	Deviation *DeviationSpec `json:"deviation,omitempty"`
}

// DeviationSpec pins the expected Explanation fields.
type DeviationSpec struct {
	// Entry is the expected Explanation.EntryIndex (-1 when no single
	// entry is to blame, e.g. unknown purpose).
	Entry int `json:"entry"`
	// Task, when non-empty, is the expected diverging task.
	Task string `json:"task,omitempty"`
	// Class, when non-empty, is the expected nearest-miss class (the
	// core.Miss* constants, e.g. "wrong-role", "out-of-order").
	Class string `json:"class,omitempty"`
}

var verdicts = map[string]core.Outcome{
	"compliant":     core.OutcomeCompliant,
	"violation":     core.OutcomeViolation,
	"indeterminate": core.OutcomeIndeterminate,
}

// Load reads and validates one fixture file. The JSON is strict:
// unknown fields are errors, so a typoed "expct" key cannot silently
// turn an assertion off.
func Load(path string) (*Fixture, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var fx Fixture
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&fx); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", path, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario %s: trailing data after the fixture object", path)
	}
	fx.Path = path
	if err := fx.validate(); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", path, err)
	}
	return &fx, nil
}

// validate enforces the structural rules that Run would otherwise trip
// over mid-replay, so authoring errors surface with the field name.
func (fx *Fixture) validate() error {
	if fx.Name == "" {
		return fmt.Errorf("missing name")
	}
	if (fx.Process == nil) == (fx.ProcessFile == "") {
		return fmt.Errorf("fixture %q: want exactly one of process / process_file", fx.Name)
	}
	if len(fx.CaseCodes) == 0 {
		return fmt.Errorf("fixture %q: no case_codes", fx.Name)
	}
	for _, c := range fx.CaseCodes {
		if c == "" || strings.ContainsRune(c, '-') {
			return fmt.Errorf("fixture %q: bad case code %q (the prefix before '-')", fx.Name, c)
		}
	}
	if len(fx.Trails) == 0 {
		return fmt.Errorf("fixture %q: no trails", fx.Name)
	}
	seen := map[string]bool{}
	for i, tr := range fx.Trails {
		where := fmt.Sprintf("fixture %q trail %d (%s)", fx.Name, i, tr.Name)
		if tr.Name == "" {
			return fmt.Errorf("fixture %q trail %d: missing name", fx.Name, i)
		}
		if seen[tr.Name] {
			return fmt.Errorf("%s: duplicate trail name", where)
		}
		seen[tr.Name] = true
		if tr.Case == "" {
			return fmt.Errorf("%s: missing case", where)
		}
		if len(tr.Entries) == 0 {
			return fmt.Errorf("%s: no entries", where)
		}
		for j, e := range tr.Entries {
			if e.Time == "" || e.Role == "" || e.Task == "" {
				return fmt.Errorf("%s entry %d: time, role and task are required", where, j)
			}
			if e.Status != "" {
				if _, err := audit.ParseStatus(e.Status); err != nil {
					return fmt.Errorf("%s entry %d: %w", where, j, err)
				}
			}
		}
		if _, ok := verdicts[tr.Expect.Verdict]; !ok {
			return fmt.Errorf("%s: verdict %q (want compliant, violation or indeterminate)", where, tr.Expect.Verdict)
		}
		if tr.Expect.Verdict == "compliant" && tr.Expect.Deviation != nil {
			return fmt.Errorf("%s: a compliant trail cannot expect a deviation", where)
		}
		if d := tr.Expect.Deviation; d != nil && d.Entry < -1 {
			return fmt.Errorf("%s: deviation entry %d", where, d.Entry)
		}
	}
	return nil
}

// process materializes the fixture's BPMN process, resolving
// ProcessFile relative to the fixture's directory.
func (fx *Fixture) process() (*bpmn.Process, error) {
	if fx.Process != nil {
		return bpmn.FromSpec(*fx.Process)
	}
	file := fx.ProcessFile
	if !filepath.IsAbs(file) && fx.Path != "" {
		file = filepath.Join(filepath.Dir(fx.Path), file)
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(file, ".bpmn") || strings.HasSuffix(file, ".xml") {
		return bpmn.DecodeXML(f)
	}
	return bpmn.DecodeJSON(f)
}

// policyOf parses the fixture's policy fragment; a fixture with no
// policy lines gets exact role matching (nil hierarchy).
func (fx *Fixture) policyOf() (*policy.Policy, error) {
	if len(fx.Policy) == 0 {
		return nil, nil
	}
	return policy.ParsePolicyString(strings.Join(fx.Policy, "\n"))
}

// trail materializes one trail spec into chronologically sorted audit
// entries.
func (tr *TrailSpec) trail() (*audit.Trail, error) {
	entries := make([]audit.Entry, 0, len(tr.Entries))
	for j, es := range tr.Entries {
		t, err := cli.ParseTime(es.Time)
		if err != nil {
			return nil, fmt.Errorf("trail %s entry %d: %w", tr.Name, j, err)
		}
		e := audit.Entry{
			User:   es.User,
			Role:   es.Role,
			Action: es.Action,
			Task:   es.Task,
			Case:   es.Case,
			Time:   t,
		}
		if e.Action == "" {
			e.Action = "access"
		}
		if e.Case == "" {
			e.Case = tr.Case
		}
		if es.Object != "" {
			obj, err := policy.ParseObject(es.Object)
			if err != nil {
				return nil, fmt.Errorf("trail %s entry %d: %w", tr.Name, j, err)
			}
			e.Object = obj
		}
		if es.Status != "" {
			st, err := audit.ParseStatus(es.Status)
			if err != nil {
				return nil, fmt.Errorf("trail %s entry %d: %w", tr.Name, j, err)
			}
			e.Status = st
		}
		entries = append(entries, e)
	}
	return audit.NewTrail(entries), nil
}

// Discover expands runner arguments into a sorted list of fixture
// files. Each argument is a fixture file, a directory, or a Go-style
// recursive pattern dir/... — all *.scenario.json files under it.
func Discover(args []string) ([]string, error) {
	var files []string
	seen := map[string]bool{}
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			files = append(files, p)
		}
	}
	for _, arg := range args {
		root, recursive := strings.CutSuffix(arg, "/...")
		if root == "" {
			root = "."
		}
		info, err := os.Stat(root)
		if err != nil {
			return nil, err
		}
		switch {
		case !info.IsDir():
			if recursive {
				return nil, fmt.Errorf("scenario: %s: /... wants a directory", arg)
			}
			add(root)
		default:
			err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if d.IsDir() {
					if !recursive && p != root {
						return fs.SkipDir
					}
					return nil
				}
				if strings.HasSuffix(p, Ext) {
					add(p)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("scenario: no %s files under %s", Ext, strings.Join(args, " "))
	}
	return files, nil
}
