package scenario_test

import (
	"fmt"
	"testing"

	"repro/internal/bpmn"
	"repro/internal/scenario"
)

// fuzzBase builds a fresh copy of the fuzz seed fixture: a two-pool
// claims process with an XOR split and a fallible verification task, and
// a trail that walks the retry path. Every fuzz iteration mutates its
// own copy.
func fuzzBase() *scenario.Fixture {
	return &scenario.Fixture{
		Name: "fuzz-claims",
		Process: &bpmn.Spec{
			Name:  "FuzzClaims",
			Pools: []string{"Agent", "Adjuster"},
			Elements: []bpmn.ElemSpec{
				{ID: "S1", Kind: "start", Pool: "Agent"},
				{ID: "T01", Kind: "task", Pool: "Agent", Name: "Register claim"},
				{ID: "T02", Kind: "task", Pool: "Agent", Name: "Verify coverage", OnError: "T01"},
				{ID: "G1", Kind: "xor", Pool: "Agent"},
				{ID: "T03", Kind: "task", Pool: "Agent", Name: "Settle fast-track"},
				{ID: "E2", Kind: "messageEnd", Pool: "Agent"},
				{ID: "S2", Kind: "messageStart", Pool: "Adjuster"},
				{ID: "T04", Kind: "task", Pool: "Adjuster", Name: "Assess damage"},
				{ID: "T05", Kind: "task", Pool: "Adjuster", Name: "Approve settlement"},
				{ID: "E3", Kind: "end", Pool: "Adjuster"},
				{ID: "E1", Kind: "end", Pool: "Agent"},
			},
			Flows: []bpmn.FlowSpec{
				{From: "S1", To: "T01", Kind: "sequence"},
				{From: "T01", To: "T02", Kind: "sequence"},
				{From: "T02", To: "G1", Kind: "sequence"},
				{From: "G1", To: "T03", Kind: "sequence"},
				{From: "G1", To: "E2", Kind: "sequence"},
				{From: "T03", To: "E1", Kind: "sequence"},
				{From: "S2", To: "T04", Kind: "sequence"},
				{From: "T04", To: "T05", Kind: "sequence"},
				{From: "T05", To: "E3", Kind: "sequence"},
				{From: "E2", To: "S2", Kind: "message"},
			},
		},
		CaseCodes: []string{"FZ"},
		Policy:    []string{"role Agent", "role Adjuster", "role Senior : Adjuster"},
		// Mutations routinely produce purposes the compiler refuses
		// (that is fine — the property under test is engine agreement,
		// and a declared fallback still replays identically).
		AllowFallback: true,
		Trails: []scenario.TrailSpec{{
			Name: "retry-then-refer",
			Case: "FZ-1",
			Entries: []scenario.EntrySpec{
				{Time: "202608010900", User: "ann", Role: "Agent", Task: "T01"},
				{Time: "202608010910", User: "ann", Role: "Agent", Task: "T02"},
				{Time: "202608010920", User: "ann", Role: "Agent", Task: "T02", Status: "failure"},
				{Time: "202608010930", User: "ann", Role: "Agent", Task: "T01"},
				{Time: "202608010940", User: "ann", Role: "Agent", Task: "T02"},
				{Time: "202608011000", User: "adi", Role: "Adjuster", Task: "T04"},
				{Time: "202608011010", User: "adi", Role: "Adjuster", Task: "T05"},
			},
			Expect: scenario.Expectation{Verdict: "compliant"},
		}},
	}
}

// fuzz mutation vocabularies. Indexing is data-byte driven, so the same
// corpus entry always produces the same mutant.
var (
	fuzzTasks  = []string{"T01", "T02", "T03", "T04", "T05", "T99", "B07", "Err"}
	fuzzRoles  = []string{"Agent", "Adjuster", "Senior", "Intern", ""}
	fuzzCases  = []string{"FZ-1", "FZ-2", "ZZ-9", ""}
	fuzzStatus = []string{"", "success", "failure"}
)

// FuzzScenario co-mutates the seed fixture's process and trail from the
// fuzz data and asserts the engines still agree: whatever verdict a
// mutant produces, interpreter, compiled and minimized replay must
// render byte-identical reports. Mutants whose process no longer
// validates (or whose trail no longer parses) are skipped — authoring
// errors are the parser's department, tested elsewhere.
func FuzzScenario(f *testing.F) {
	f.Add([]byte{})                       // the unmutated base
	f.Add([]byte{0x00, 0x01})             // flip a status
	f.Add([]byte{0x10, 0x05, 0x21, 0x02}) // retarget a task, then a role
	f.Add([]byte{0x30, 0x00, 0x42, 0x00}) // drop an entry, swap a pair
	f.Add([]byte{0x50, 0x03, 0x61, 0x01}) // redirect a flow, toggle OnError
	f.Add([]byte{0x70, 0x02, 0x13, 0x06, 0x25, 0x01, 0x55, 0x04})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			t.Skip("bounded mutation budget")
		}
		fx := fuzzBase()
		tr := &fx.Trails[0]
		spec := fx.Process

		// Each byte pair is one mutation: the high nibble of the first
		// byte picks the operation, the low nibble and the second byte
		// pick the operands.
		for i := 0; i+1 < len(data); i += 2 {
			op, sel := data[i], int(data[i+1])
			pick := func(n int) int {
				if n == 0 {
					return 0
				}
				return (sel + int(op&0x0f)) % n
			}
			switch op >> 4 {
			case 0x0: // flip an entry's status
				e := &tr.Entries[pick(len(tr.Entries))]
				e.Status = fuzzStatus[pick(len(fuzzStatus))]
			case 0x1: // retarget an entry's task
				tr.Entries[pick(len(tr.Entries))].Task = fuzzTasks[sel%len(fuzzTasks)]
			case 0x2: // rewrite an entry's role
				tr.Entries[pick(len(tr.Entries))].Role = fuzzRoles[sel%len(fuzzRoles)]
			case 0x3: // delete an entry
				if len(tr.Entries) > 1 {
					j := pick(len(tr.Entries))
					tr.Entries = append(tr.Entries[:j], tr.Entries[j+1:]...)
				}
			case 0x4: // swap two adjacent entries (keeps timestamps: reorders semantics)
				if n := len(tr.Entries); n > 1 {
					j := pick(n - 1)
					tr.Entries[j].Task, tr.Entries[j+1].Task = tr.Entries[j+1].Task, tr.Entries[j].Task
				}
			case 0x5: // redirect a sequence flow's target
				fl := &spec.Flows[pick(len(spec.Flows))]
				if fl.Kind == "sequence" {
					fl.To = fuzzTasks[sel%len(fuzzTasks)]
				}
			case 0x6: // toggle a task's error handler
				el := &spec.Elements[pick(len(spec.Elements))]
				if el.Kind == "task" {
					if el.OnError == "" {
						el.OnError = fuzzTasks[sel%len(fuzzTasks)]
					} else {
						el.OnError = ""
					}
				}
			case 0x7: // duplicate an entry at the tail
				e := tr.Entries[pick(len(tr.Entries))]
				e.Time = fmt.Sprintf("2026080210%02d", len(tr.Entries)%60)
				tr.Entries = append(tr.Entries, e)
			case 0x8: // reassign an entry's case
				tr.Entries[pick(len(tr.Entries))].Case = fuzzCases[sel%len(fuzzCases)]
			case 0x9: // truncate the trail
				if n := len(tr.Entries); n > 1 {
					tr.Entries = tr.Entries[:1+pick(n-1)]
				}
			}
		}

		res, err := scenario.Run(fx, scenario.Options{SkipExpectations: true})
		if err != nil {
			// The mutant broke process validation or entry parsing;
			// nothing to compare.
			t.Skip(err)
		}
		if !res.OK() {
			t.Fatalf("engines disagree on mutant %x:\n%s", data, res.Failures)
		}
	})
}
