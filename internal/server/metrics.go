package server

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/obs"
)

// Metrics is auditd's observability surface, exposed at /metrics in
// Prometheus text exposition format. It is stdlib-only by design (the
// container bakes no client library): counters and histogram buckets
// are plain atomics, and rendering walks them under no lock, so a
// scrape never stalls ingestion.
type metrics struct {
	eventsIngested    atomic.Int64 // accepted into a shard queue
	eventsRejected    atomic.Int64 // refused with 429 backpressure
	eventsQuarantined atomic.Int64 // malformed lines set aside
	feedErrors        atomic.Int64 // genuine monitor errors (not verdicts)

	verdictsOK            atomic.Int64
	verdictsViolation     atomic.Int64
	verdictsIndeterminate atomic.Int64

	// purposeVerdicts maps purpose name → *purposeCounters; purposes
	// are few and fixed at boot, so a sync.Map read path is hit after
	// the first entry of each purpose.
	purposeVerdicts sync.Map

	// feedCompiled/feedInterpreted count entries by the engine that
	// consumed them — the live compiled-vs-fallback ratio.
	feedCompiled    atomic.Int64
	feedInterpreted atomic.Int64

	feedLatency      histogram
	snapshotDuration histogram
	snapshots        atomic.Int64
	snapshotErrors   atomic.Int64
	lastSnapshotNano atomic.Int64 // unix nanoseconds of the last successful snapshot

	// Durability and supervision (PR 7).
	walAppendErrors atomic.Int64 // WAL appends that failed (policy applied)
	walReplayed     atomic.Int64 // records re-fed from the WAL at boot
	walTruncated    atomic.Int64 // WAL segments removed past checkpoints
	shardPanics     atomic.Int64 // shard worker panics recovered by the supervisor
	shardsFailed    atomic.Int64 // shards whose restart budget is exhausted
	entriesDropped  atomic.Int64 // accepted entries dropped by panics/failed shards

	// Tamper-evident ledger (PR 8).
	ledgerBatches      atomic.Int64 // batches sealed (roots signed)
	ledgerLeaves       atomic.Int64 // leaves covered by sealed batches
	ledgerProofs       atomic.Int64 // proof bundles served
	ledgerSealDuration histogram    // close-to-signed latency per batch

	// Pipeline stage telemetry (PR 10): one histogram per stage, fed
	// by sampled per-batch StageRecords (DESIGN.md §17).
	stageLatency [obs.NumStages]histogram
}

func newMetrics() *metrics {
	m := &metrics{}
	// Feed of one entry on a warm checker is sub-millisecond; cold LTS
	// derivation can take much longer, hence the wide tail.
	m.feedLatency.bounds = []float64{25e-6, 50e-6, 100e-6, 250e-6, 500e-6, 1e-3, 5e-3, 25e-3, 100e-3, 1}
	m.feedLatency.counts = make([]atomic.Int64, len(m.feedLatency.bounds)+1)
	m.snapshotDuration.bounds = []float64{1e-3, 5e-3, 25e-3, 100e-3, 500e-3, 2, 10}
	m.snapshotDuration.counts = make([]atomic.Int64, len(m.snapshotDuration.bounds)+1)
	// Sealing a batch is hashing + one ed25519 signature: tens of
	// microseconds typically, milliseconds only for very large batches.
	m.ledgerSealDuration.bounds = []float64{25e-6, 100e-6, 500e-6, 2.5e-3, 10e-3, 100e-3}
	m.ledgerSealDuration.counts = make([]atomic.Int64, len(m.ledgerSealDuration.bounds)+1)
	// Stage durations span sub-microsecond (queue handoff on an idle
	// shard) to seconds (fsync on a stalled disk), hence the wide grid.
	for i := range m.stageLatency {
		m.stageLatency[i].bounds = []float64{1e-6, 5e-6, 25e-6, 100e-6, 500e-6, 2.5e-3, 10e-3, 50e-3, 250e-3, 1}
		m.stageLatency[i].counts = make([]atomic.Int64, len(m.stageLatency[i].bounds)+1)
	}
	return m
}

// observeStages folds one completed batch's timing record into the
// stage histograms. WAL/ledger stages are skipped when they never ran
// (no WAL or no ledger configured) so their histograms don't fill
// with meaningless zeros.
func (m *metrics) observeStages(r *obs.StageRecord) {
	if r == nil {
		return
	}
	for _, st := range obs.Stages() {
		d := r.Dur(st)
		if d == 0 {
			switch st {
			case obs.StageWALAppend, obs.StageWALFsync, obs.StageLedgerSeal:
				continue
			}
		}
		m.stageLatency[st].observe(d)
	}
}

// purposeCounters is one purpose's verdict tally.
type purposeCounters struct {
	ok, violation, indeterminate atomic.Int64
}

// countPurposeVerdict bumps the per-purpose verdict counter. Unknown
// purposes ("" — unregistered case codes) are skipped: the global
// verdict counters already cover them.
func (m *metrics) countPurposeVerdict(purpose, outcome string) {
	if purpose == "" {
		return
	}
	v, ok := m.purposeVerdicts.Load(purpose)
	if !ok {
		v, _ = m.purposeVerdicts.LoadOrStore(purpose, &purposeCounters{})
	}
	pc := v.(*purposeCounters)
	switch outcome {
	case outcomeCompliant:
		pc.ok.Add(1)
	case outcomeViolation:
		pc.violation.Add(1)
	case outcomeIndeterminate:
		pc.indeterminate.Add(1)
	}
}

// countEngine bumps the engine feed counter.
func (m *metrics) countEngine(engine string) {
	switch engine {
	case core.EngineCompiled:
		m.feedCompiled.Add(1)
	case core.EngineInterpreted:
		m.feedInterpreted.Add(1)
	}
}

// histogram is a fixed-bucket latency histogram in seconds. counts has
// one extra slot for the +Inf bucket; sum is kept in nanoseconds so it
// stays an integer atomic.
type histogram struct {
	bounds  []float64
	counts  []atomic.Int64
	sumNano atomic.Int64
	n       atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	sec := d.Seconds()
	i := 0
	for ; i < len(h.bounds); i++ {
		if sec <= h.bounds[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.sumNano.Add(int64(d))
	h.n.Add(1)
}

// write renders the histogram with cumulative buckets, as Prometheus
// expects.
func (h *histogram) write(w io.Writer, name string) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumNano.Load())/1e9)
	fmt.Fprintf(w, "%s_count %d\n", name, h.n.Load())
}

// writeLabeled renders the histogram's series with an extra label
// (e.g. stage="decode") inside the braces. The caller writes the
// shared # TYPE header once for the whole family.
func (h *histogram) writeLabeled(w io.Writer, name, label string) {
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", name, label, formatBound(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, label, cum)
	fmt.Fprintf(w, "%s_sum{%s} %g\n", name, label, float64(h.sumNano.Load())/1e9)
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, label, h.n.Load())
}

func formatBound(b float64) string { return fmt.Sprintf("%g", b) }

func counter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func gauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}

// writeTo renders the full exposition, pulling live gauges (queue
// depths, quarantine size, snapshot age) from the server.
func (s *Server) writeMetrics(w io.Writer) {
	m := s.metrics
	counter(w, "auditd_events_ingested_total", "Entries accepted into a shard queue.", m.eventsIngested.Load())
	counter(w, "auditd_events_rejected_total", "Entries refused with 429 backpressure.", m.eventsRejected.Load())
	counter(w, "auditd_events_quarantined_total", "Malformed input lines quarantined.", m.eventsQuarantined.Load())
	counter(w, "auditd_feed_errors_total", "Monitor feed errors that were not verdicts.", m.feedErrors.Load())

	fmt.Fprintf(w, "# HELP auditd_verdicts_total Verdicts returned by the online monitor, by outcome.\n# TYPE auditd_verdicts_total counter\n")
	fmt.Fprintf(w, "auditd_verdicts_total{outcome=\"compliant\"} %d\n", m.verdictsOK.Load())
	fmt.Fprintf(w, "auditd_verdicts_total{outcome=\"violation\"} %d\n", m.verdictsViolation.Load())
	fmt.Fprintf(w, "auditd_verdicts_total{outcome=\"indeterminate\"} %d\n", m.verdictsIndeterminate.Load())

	// Per-purpose verdicts, purposes sorted for a stable exposition.
	var purposes []string
	m.purposeVerdicts.Range(func(k, _ any) bool {
		purposes = append(purposes, k.(string))
		return true
	})
	if len(purposes) > 0 {
		sort.Strings(purposes)
		fmt.Fprintf(w, "# HELP auditd_purpose_verdicts_total Verdicts by purpose and outcome.\n# TYPE auditd_purpose_verdicts_total counter\n")
		for _, p := range purposes {
			v, _ := m.purposeVerdicts.Load(p)
			pc := v.(*purposeCounters)
			fmt.Fprintf(w, "auditd_purpose_verdicts_total{purpose=%q,outcome=\"compliant\"} %d\n", p, pc.ok.Load())
			fmt.Fprintf(w, "auditd_purpose_verdicts_total{purpose=%q,outcome=\"violation\"} %d\n", p, pc.violation.Load())
			fmt.Fprintf(w, "auditd_purpose_verdicts_total{purpose=%q,outcome=\"indeterminate\"} %d\n", p, pc.indeterminate.Load())
		}
	}

	fmt.Fprintf(w, "# HELP auditd_feed_engine_total Entries consumed, by replay engine.\n# TYPE auditd_feed_engine_total counter\n")
	fmt.Fprintf(w, "auditd_feed_engine_total{engine=\"compiled\"} %d\n", m.feedCompiled.Load())
	fmt.Fprintf(w, "auditd_feed_engine_total{engine=\"interpreted\"} %d\n", m.feedInterpreted.Load())

	// Symbol-cache effectiveness of the compiled fast path, summed
	// over the shards' monitors (their counters are atomics).
	var symHits, symMisses uint64
	for _, sh := range s.shards {
		h, miss := sh.mon.SymbolCacheStats()
		symHits += h
		symMisses += miss
	}
	counter(w, "auditd_symbol_cache_hits_total", "Compiled-engine symbol lookups served from cache.", int64(symHits))
	counter(w, "auditd_symbol_cache_misses_total", "Compiled-engine symbol lookups resolved via the DFA index.", int64(symMisses))
	if total := symHits + symMisses; total > 0 {
		gauge(w, "auditd_symbol_cache_hit_ratio", "Fraction of symbol lookups served from cache.",
			float64(symHits)/float64(total))
	}

	fmt.Fprintf(w, "# HELP auditd_shard_queue_depth Entries accepted but not yet fed, per shard.\n# TYPE auditd_shard_queue_depth gauge\n")
	for _, sh := range s.shards {
		fmt.Fprintf(w, "auditd_shard_queue_depth{shard=\"%d\"} %d\n", sh.id, sh.pendingEntries())
	}
	gauge(w, "auditd_shards", "Number of monitor shards.", float64(len(s.shards)))
	gauge(w, "auditd_cases", "Cases with live verdict state.", float64(s.caseCount()))

	held, _ := s.quar.stats()
	gauge(w, "auditd_quarantine_held", "Quarantined records currently held (bounded).", float64(held))

	spansHeld, spansTotal := s.ring.Stats()
	gauge(w, "auditd_trace_spans_held", "Spans currently held in the trace ring buffer.", float64(spansHeld))
	counter(w, "auditd_trace_spans_total", "Spans recorded since boot (ring evicts beyond its capacity).", int64(spansTotal))
	counter(w, "auditd_trace_spans_dropped_total", "Spans evicted from the trace ring by overflow.", int64(s.ring.Dropped()))

	// Build identity: which binary is this, exactly (value is always 1).
	fmt.Fprintf(w, "# HELP auditd_build_info Build metadata as labels; the value is always 1.\n# TYPE auditd_build_info gauge\n")
	fmt.Fprintf(w, "auditd_build_info{version=%q,go_version=%q,compiler_fingerprint=%q} 1\n",
		cli.Version, runtime.Version(), cli.CompilerFingerprint())

	// Pipeline stage latency (sampled per batch; see /v1/status for
	// the configured 1-in-N).
	fmt.Fprintf(w, "# HELP auditd_stage_latency_seconds Per-batch pipeline stage latency (deterministic 1-in-N batch sampling).\n# TYPE auditd_stage_latency_seconds histogram\n")
	for _, st := range obs.Stages() {
		m.stageLatency[st].writeLabeled(w, "auditd_stage_latency_seconds", fmt.Sprintf("stage=%q", st.String()))
	}
	gauge(w, "auditd_stage_sample_every", "Configured 1-in-N stage sampling (0 = off; traced requests always timed).", float64(s.stages.Every()))

	// Log suppression: hot-path warnings dropped by the token-bucket
	// limiters.
	fmt.Fprintf(w, "# HELP auditd_log_suppressed_total Hot-path log statements suppressed by rate limiting.\n# TYPE auditd_log_suppressed_total counter\n")
	fmt.Fprintf(w, "auditd_log_suppressed_total{class=\"verdict\"} %d\n", s.limVerdict.Suppressed())
	fmt.Fprintf(w, "auditd_log_suppressed_total{class=\"quarantine\"} %d\n", s.limQuar.Suppressed())
	fmt.Fprintf(w, "auditd_log_suppressed_total{class=\"wal\"} %d\n", s.limWAL.Suppressed())

	// Flight recorder bookkeeping.
	fHeld, fTotal, fDumps := s.flight.Stats()
	gauge(w, "auditd_flight_events_held", "Flight-recorder events currently held across all rings.", float64(fHeld))
	counter(w, "auditd_flight_events_total", "Flight-recorder events recorded since boot.", int64(fTotal))
	counter(w, "auditd_flight_dumps_total", "Flight-recorder dump files written.", fDumps)

	// Go runtime gauges: enough to spot leaks and GC pressure without
	// a client library.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gauge(w, "auditd_go_goroutines", "Live goroutines.", float64(runtime.NumGoroutine()))
	gauge(w, "auditd_go_heap_alloc_bytes", "Heap bytes in use.", float64(ms.HeapAlloc))
	gauge(w, "auditd_go_heap_objects", "Live heap objects.", float64(ms.HeapObjects))
	counter(w, "auditd_go_gc_cycles_total", "Completed GC cycles.", int64(ms.NumGC))
	gauge(w, "auditd_go_gc_pause_total_seconds", "Cumulative GC stop-the-world pause.", float64(ms.PauseTotalNs)/1e9)

	// Durability and supervision.
	if s.wal != nil {
		appended, syncs, segments, bytes := s.wal.Stats()
		counter(w, "auditd_wal_records_total", "Entries appended to the write-ahead log since boot.", int64(appended))
		counter(w, "auditd_wal_fsyncs_total", "Explicit WAL fsyncs issued.", int64(syncs))
		gauge(w, "auditd_wal_segments", "Live WAL segment files.", float64(segments))
		gauge(w, "auditd_wal_bytes", "Total WAL bytes on disk.", float64(bytes))
		counter(w, "auditd_wal_replayed_total", "Entries re-fed from the WAL at boot.", m.walReplayed.Load())
		counter(w, "auditd_wal_truncated_segments_total", "WAL segments removed as covered by checkpoints.", m.walTruncated.Load())
		counter(w, "auditd_wal_append_errors_total", "WAL appends that failed (failure policy applied).", m.walAppendErrors.Load())
	}
	if s.ledger != nil {
		// Gauges come from ledger state (restored batches count too);
		// the counters are since-boot sealing activity.
		batches, leaves, open, forced := s.ledger.Stats()
		counter(w, "auditd_ledger_batches_total", "Ledger batches sealed since boot (roots signed).", m.ledgerBatches.Load())
		counter(w, "auditd_ledger_leaves_total", "Entries sealed into ledger batches since boot.", m.ledgerLeaves.Load())
		counter(w, "auditd_ledger_proofs_total", "Proof bundles served.", m.ledgerProofs.Load())
		counter(w, "auditd_ledger_forced_cuts_total", "Batches cut early to answer a proof request.", int64(forced))
		gauge(w, "auditd_ledger_head_seq", "Sequence number of the newest signed root.", float64(batches))
		gauge(w, "auditd_ledger_sealed_leaves", "Entries covered by sealed batches, including restored ones.", float64(leaves))
		gauge(w, "auditd_ledger_open_leaves", "Entries appended but not yet sealed.", float64(open))
		gauge(w, "auditd_ledger_sealed_lsn", "Highest WAL LSN covered by a sealed batch.", float64(s.ledger.LastSealedLSN()))
		m.ledgerSealDuration.write(w, "auditd_ledger_seal_duration_seconds")
	}
	counter(w, "auditd_shard_panics_total", "Shard worker panics recovered by the supervisor.", m.shardPanics.Load())
	gauge(w, "auditd_shards_failed", "Shards whose restart budget is exhausted.", float64(m.shardsFailed.Load()))
	counter(w, "auditd_entries_dropped_total", "Accepted entries dropped by shard panics or failed shards (recoverable from the WAL).", m.entriesDropped.Load())

	m.feedLatency.write(w, "auditd_feed_latency_seconds")
	m.snapshotDuration.write(w, "auditd_snapshot_duration_seconds")
	counter(w, "auditd_snapshots_total", "Checkpoint snapshots written.", m.snapshots.Load())
	counter(w, "auditd_snapshot_errors_total", "Checkpoint snapshots that failed.", m.snapshotErrors.Load())
	if last := m.lastSnapshotNano.Load(); last > 0 {
		gauge(w, "auditd_snapshot_age_seconds", "Seconds since the last successful snapshot.",
			time.Since(time.Unix(0, last)).Seconds())
	}
}
