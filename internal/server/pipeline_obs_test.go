package server

// PR 10 observability-surface tests: stage-latency histograms behind
// deterministic sampling, the flight recorder's dump-on-panic path,
// the /v1/status deep view, the /v1/watch SSE stream (including client
// disconnect), /v1/traces filters, the build-info series, and
// hot-path log rate limiting.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/obs"
)

// metricValue extracts the value of the first metrics line with the
// given series prefix, e.g. `auditd_stage_latency_seconds_count{stage="replay"}`.
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metrics output has no series %q", series)
	return 0
}

// TestStageHistograms: with -stage-sample 1 every batch is timed, so
// after a WAL-backed ingest the decode, WAL append, fsync, queue-wait
// and replay histograms must all have observations; the ledger-seal
// histogram stays empty (no ledger configured) rather than reporting
// zeros as data.
func TestStageHistograms(t *testing.T) {
	sc := hospitalScenario(t)
	cfg, _ := walConfig(t, 2)
	cfg.StageSample = 1
	_, ts := startServer(t, sc, cfg)

	if resp, _ := post(t, ts.URL+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, sc.Trail)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest: %s", resp.Status)
	}
	_, body := getBody(t, ts.URL+"/metrics")
	for _, stage := range []string{"decode", "wal_append", "wal_fsync", "queue_wait", "replay"} {
		series := fmt.Sprintf(`auditd_stage_latency_seconds_count{stage=%q}`, stage)
		if n := metricValue(t, body, series); n < 1 {
			t.Errorf("%s = %v, want >= 1", series, n)
		}
	}
	if n := metricValue(t, body, `auditd_stage_latency_seconds_count{stage="ledger_seal"}`); n != 0 {
		t.Errorf("ledger_seal observed %v batches with no ledger configured", n)
	}
	if n := metricValue(t, body, "auditd_stage_sample_every"); n != 1 {
		t.Errorf("auditd_stage_sample_every = %v, want 1", n)
	}
}

// TestStageSamplingDisabled: -stage-sample < 0 switches the timers off
// entirely — no observations, and the gauge reports 0 so an operator
// can tell "off" from "nothing happened yet".
func TestStageSamplingDisabled(t *testing.T) {
	sc := hospitalScenario(t)
	_, ts := startServer(t, sc, Config{Shards: 2, StageSample: -1})

	if resp, _ := post(t, ts.URL+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, sc.Trail)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest: %s", resp.Status)
	}
	_, body := getBody(t, ts.URL+"/metrics")
	if n := metricValue(t, body, `auditd_stage_latency_seconds_count{stage="replay"}`); n != 0 {
		t.Errorf("replay observed %v batches with sampling off", n)
	}
	if n := metricValue(t, body, "auditd_stage_sample_every"); n != 0 {
		t.Errorf("auditd_stage_sample_every = %v, want 0", n)
	}
}

// TestFlightDumpOnShardPanic: an injected worker panic must leave a
// flightrec-shard_panic-*.json post-mortem in -flight-dir whose tail
// names the poisoned entry (the acceptance check for the recorder).
func TestFlightDumpOnShardPanic(t *testing.T) {
	sc := hospitalScenario(t)
	dir := t.TempDir()
	srv := New(sc.Registry, hospitalChecker(sc), Config{Shards: 2, FlightDir: dir})

	var fed atomic.Int64
	var poisonedCase, poisonedTask atomic.Value
	bad := srv.shardFor(sc.Trail.Cases()[0])
	bad.panicHook = func(e *audit.Entry) {
		if fed.Add(1) == 5 {
			poisonedCase.Store(e.Case)
			poisonedTask.Store(e.Task)
			panic("injected shard panic")
		}
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, _ := post(t, ts.URL+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, sc.Trail)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest across panic: %s", resp.Status)
	}
	if n := srv.metrics.shardPanics.Load(); n != 1 {
		t.Fatalf("shardPanics = %d, want 1", n)
	}

	matches, err := filepath.Glob(filepath.Join(dir, "flightrec-shard_panic-*.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("dump files %v (err %v), want exactly one", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	var dump obs.FlightDump
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if dump.Reason != "shard_panic" || len(dump.Events) == 0 {
		t.Fatalf("dump = reason %q, %d events", dump.Reason, len(dump.Events))
	}
	// The panic event is at (or near) the tail and names the poisoned
	// entry — that is what makes the dump a usable post-mortem.
	wantCase, wantTask := poisonedCase.Load().(string), poisonedTask.Load().(string)
	var found bool
	for _, ev := range dump.Events[max(0, len(dump.Events)-5):] {
		if ev.Kind == obs.FlightPanic {
			found = true
			if ev.Case != wantCase || !strings.Contains(ev.Detail, wantTask) ||
				!strings.Contains(ev.Detail, "injected shard panic") {
				t.Errorf("panic event = %+v, want case %q task %q", ev, wantCase, wantTask)
			}
		}
	}
	if !found {
		t.Errorf("no panic event in the dump tail: %+v", dump.Events)
	}
	if _, _, dumps := srv.flight.Stats(); dumps != 1 {
		t.Errorf("dumps = %d, want 1", dumps)
	}

	// The live view serves the same merged ring.
	code, body := getBody(t, ts.URL+"/debug/flightrecorder")
	if code != http.StatusOK || !strings.Contains(body, `"panic"`) {
		t.Errorf("/debug/flightrecorder = %d, missing panic event:\n%.400s", code, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestStatusEndpoint: /v1/status is the one-document operational view;
// its totals must agree with what the ingest actually did.
func TestStatusEndpoint(t *testing.T) {
	sc := hospitalScenario(t)
	cfg, _ := walConfig(t, 3)
	_, ts := startServer(t, sc, cfg)

	if resp, _ := post(t, ts.URL+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, sc.Trail)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest: %s", resp.Status)
	}
	code, body := getBody(t, ts.URL+"/v1/status")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var st statusReply
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if !st.Ready || st.Version == "" || st.GoVersion == "" || st.CompilerFingerprint == "" {
		t.Errorf("identity/readiness: %+v", st)
	}
	if st.Ingested != int64(sc.Trail.Len()) || st.Cases == 0 || st.Purposes == 0 {
		t.Errorf("totals: ingested %d cases %d purposes %d", st.Ingested, st.Cases, st.Purposes)
	}
	if got := st.Verdicts.Compliant + st.Verdicts.Violation + st.Verdicts.Indeterminate; got == 0 {
		t.Error("no verdicts counted")
	}
	if len(st.Shards) != 3 {
		t.Fatalf("%d shard rows, want 3", len(st.Shards))
	}
	cases := 0
	for _, sh := range st.Shards {
		cases += sh.Cases
		if sh.Pending != 0 {
			t.Errorf("shard %d still pending %d after ?wait=1", sh.ID, sh.Pending)
		}
	}
	if cases != st.Cases {
		t.Errorf("shard case rows sum to %d, status says %d", cases, st.Cases)
	}
	if st.WAL == nil || st.WAL.Records != uint64(sc.Trail.Len()) || st.WAL.Fsyncs == 0 {
		t.Errorf("wal status: %+v", st.WAL)
	}
	if st.StageSampleEvery != obs.DefaultStageSample {
		t.Errorf("stage_sample_every = %d, want default %d", st.StageSampleEvery, obs.DefaultStageSample)
	}
	if st.Flight.Total == 0 {
		t.Error("flight recorder saw no events across a full ingest")
	}
	if st.Watchers != 0 {
		t.Errorf("watchers = %d with no /v1/watch client", st.Watchers)
	}
}

// TestWatchSSE: a /v1/watch subscriber sees verdict transitions as SSE
// events while the trail streams in, and its subscription is reaped
// the moment the client disconnects.
func TestWatchSSE(t *testing.T) {
	sc := hospitalScenario(t)
	srv, ts := startServer(t, sc, Config{Shards: 2})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/watch", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	r := bufio.NewReader(resp.Body)
	// The opening comment confirms the subscription is registered
	// before we ingest anything.
	if line, err := r.ReadString('\n'); err != nil || !strings.HasPrefix(line, ":") {
		t.Fatalf("SSE preamble = %q, %v", line, err)
	}
	if n := srv.watch.count(); n != 1 {
		t.Fatalf("watchers = %d after subscribe", n)
	}

	if resp, _ := post(t, ts.URL+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, sc.Trail)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest: %s", resp.Status)
	}

	// Read until the HT-10 violation transition arrives.
	type sse struct{ event, data string }
	deadline := time.AfterFunc(10*time.Second, cancel)
	defer deadline.Stop()
	var got *watchEvent
	cur := sse{}
	for got == nil {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE stream ended early: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "" && cur.event == "verdict":
			var ev watchEvent
			if err := json.Unmarshal([]byte(cur.data), &ev); err != nil {
				t.Fatalf("bad SSE payload %q: %v", cur.data, err)
			}
			if ev.Case == "HT-10" {
				got = &ev
			}
			cur = sse{}
		case line == "":
			cur = sse{}
		}
	}
	if got.Outcome != outcomeViolation || got.Entries == 0 || got.Detail == "" {
		t.Errorf("HT-10 transition = %+v", got)
	}

	// Disconnect: the hub must drop the subscription promptly.
	cancel()
	for end := time.Now().Add(5 * time.Second); srv.watch.count() != 0; {
		if time.Now().After(end) {
			t.Fatalf("watchers = %d after disconnect", srv.watch.count())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTracesFilters: ?trace_id= narrows /v1/traces to one trace,
// ?case= to one case's feed spans; Held/Total keep describing the
// whole ring so the filtered view is honest about what it omits.
func TestTracesFilters(t *testing.T) {
	sc := hospitalScenario(t)
	_, ts := startServer(t, sc, Config{Shards: 2})

	tracedPost := func(traceID, caseID string) {
		t.Helper()
		sub := sc.Trail.ByCase(caseID)
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/events?wait=1", bytes.NewReader(ndjson(t, sub)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/x-ndjson")
		req.Header.Set("traceparent", "00-"+traceID+"-00f067aa0ba902b7-01")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("traced ingest: %s", resp.Status)
		}
	}
	const traceA = "aaaa0000aaaa0000aaaa0000aaaa0000"
	const traceB = "bbbb1111bbbb1111bbbb1111bbbb1111"
	tracedPost(traceA, "HT-1")
	tracedPost(traceB, "HT-10")

	all := getTraces(t, ts.URL+"/v1/traces")
	byID := getTraces(t, ts.URL+"/v1/traces?trace_id="+traceA)
	if len(byID.Spans) == 0 || len(byID.Spans) >= len(all.Spans) {
		t.Fatalf("trace_id filter returned %d of %d spans", len(byID.Spans), len(all.Spans))
	}
	for _, sp := range byID.Spans {
		if sp.TraceID.String() != traceA {
			t.Errorf("span %q from trace %s leaked through the filter", sp.Name, sp.TraceID)
		}
	}
	if byID.Held != all.Held || byID.Total != all.Total {
		t.Errorf("filtered view changed ring stats: %d/%d vs %d/%d", byID.Held, byID.Total, all.Held, all.Total)
	}

	byCase := getTraces(t, ts.URL+"/v1/traces?case=HT-10")
	if len(byCase.Spans) == 0 {
		t.Fatal("case filter returned nothing")
	}
	for _, sp := range byCase.Spans {
		if sp.Attrs["case"] != "HT-10" {
			t.Errorf("span %q attrs %v leaked through case filter", sp.Name, sp.Attrs)
		}
	}

	if empty := getTraces(t, ts.URL+"/v1/traces?trace_id=cccc2222cccc2222cccc2222cccc2222"); len(empty.Spans) != 0 {
		t.Errorf("unknown trace id matched %d spans", len(empty.Spans))
	}
}

// TestBuildInfoMetric: the build-identity series is present with all
// three labels, value 1 (the standard build_info convention).
func TestBuildInfoMetric(t *testing.T) {
	sc := hospitalScenario(t)
	_, ts := startServer(t, sc, Config{Shards: 1})
	_, body := getBody(t, ts.URL+"/metrics")
	var line string
	for _, l := range strings.Split(body, "\n") {
		if strings.HasPrefix(l, "auditd_build_info{") {
			line = l
			break
		}
	}
	if line == "" {
		t.Fatal("no auditd_build_info series")
	}
	for _, want := range []string{`version="`, `go_version="go`, `compiler_fingerprint="`} {
		if !strings.Contains(line, want) {
			t.Errorf("build_info %q missing %q", line, want)
		}
	}
	if !strings.HasSuffix(line, " 1") {
		t.Errorf("build_info value: %q", line)
	}
	if !strings.Contains(body, "auditd_trace_spans_dropped_total 0") {
		t.Error("missing auditd_trace_spans_dropped_total")
	}
}

// TestQuarantineWarnSuppression: a poison stream that quarantines on
// every line must not produce a warn per line — past the burst the
// limiter suppresses and the metric counts what was dropped.
func TestQuarantineWarnSuppression(t *testing.T) {
	sc := hospitalScenario(t)
	srv, ts := startServer(t, sc, Config{Shards: 1})

	var buf bytes.Buffer
	if err := audit.WriteCSV(&buf, sc.Trail); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(buf.String(), "\n")
	garbage := strings.Repeat("garbage,row\n", 40)
	body := lines[0] + garbage + strings.Join(lines[1:], "")

	resp, res := post(t, ts.URL+"/v1/events?wait=1", "text/csv", []byte(body))
	if resp.StatusCode != http.StatusAccepted || res.Quarantined != 40 {
		t.Fatalf("poison ingest: %s %+v", resp.Status, res)
	}
	if n := srv.limQuar.Suppressed(); n == 0 {
		t.Error("40 quarantine warns and none suppressed: limiter not wired")
	}
	_, metrics := getBody(t, ts.URL+"/metrics")
	if v := metricValue(t, metrics, `auditd_log_suppressed_total{class="quarantine"}`); v == 0 {
		t.Error("suppression not exported")
	}
}
