package server

import (
	"sync"
	"time"
)

// QuarantineRecord is one malformed input line the server set aside,
// queryable at GET /v1/quarantine. It is the server-held counterpart of
// audit.QuarantinedRecord, extended with where and when the line
// arrived so an operator can trace it back to the producer.
type QuarantineRecord struct {
	// Seq is the global 1-based quarantine sequence number; it keeps
	// counting even after old records are evicted from the bounded
	// buffer.
	Seq int64 `json:"seq"`
	// Source identifies the producer (remote address of the POST).
	Source string `json:"source"`
	// Line is the 1-based line within that request body.
	Line int `json:"line"`
	// Raw is the offending line as far as it could be read.
	Raw string `json:"raw"`
	// Err is the decode error.
	Err string `json:"error"`
	// Time is the server receive time.
	Time time.Time `json:"time"`
}

// quarantine holds the most recent Keep records plus an all-time total.
// Bounding the buffer keeps a hostile or broken producer from growing
// server memory without limit; the total (and the
// auditd_events_quarantined_total counter) still account every line.
type quarantine struct {
	mu    sync.Mutex
	keep  int
	total int64
	recs  []QuarantineRecord
}

func newQuarantine(keep int) *quarantine {
	if keep <= 0 {
		keep = 1024
	}
	return &quarantine{keep: keep}
}

func (q *quarantine) add(source string, line int, raw string, err error, now time.Time) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.total++
	q.recs = append(q.recs, QuarantineRecord{
		Seq: q.total, Source: source, Line: line, Raw: raw, Err: err.Error(), Time: now,
	})
	if len(q.recs) > q.keep {
		q.recs = append(q.recs[:0:0], q.recs[len(q.recs)-q.keep:]...)
	}
}

// stats returns the held record count and the all-time total.
func (q *quarantine) stats() (held int, total int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.recs), q.total
}

// snapshot copies the held records, newest last.
func (q *quarantine) snapshot() []QuarantineRecord {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]QuarantineRecord(nil), q.recs...)
}

// load replaces the quarantine contents from a checkpoint.
func (q *quarantine) load(total int64, recs []QuarantineRecord) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.total = total
	q.recs = append([]QuarantineRecord(nil), recs...)
	if len(q.recs) > q.keep {
		q.recs = q.recs[len(q.recs)-q.keep:]
	}
}
