package server

// Observability-surface tests (DESIGN.md §12): the explain endpoint,
// trace propagation from a caller's traceparent into per-entry feed
// spans, the new metrics series, and explanation persistence across a
// checkpoint round trip.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

type explainReply struct {
	Case        string            `json:"case"`
	Outcome     string            `json:"outcome"`
	Explanation *core.Explanation `json:"explanation"`
}

func getExplain(t *testing.T, url string) (int, explainReply) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var er explainReply
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, er
}

func TestExplainEndpoint(t *testing.T) {
	sc := hospitalScenario(t)
	_, ts := startServer(t, sc, Config{Shards: 4})

	if resp, _ := post(t, ts.URL+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, sc.Trail)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest: %s", resp.Status)
	}

	// A violating case answers with the full structured account.
	code, er := getExplain(t, ts.URL+"/v1/cases/HT-10/explain")
	if code != http.StatusOK {
		t.Fatalf("explain HT-10 = %d", code)
	}
	x := er.Explanation
	if er.Outcome != outcomeViolation || x == nil {
		t.Fatalf("explain HT-10 = %+v", er)
	}
	if x.Task != "T06" || x.EntryIndex != 0 {
		t.Errorf("diverging entry: task %q index %d, want T06/0", x.Task, x.EntryIndex)
	}
	if len(x.ExpectedTasks) != 1 || x.ExpectedTasks[0] != "T01" {
		t.Errorf("expected tasks %v, want [T01]", x.ExpectedTasks)
	}
	if x.NearestMiss == "" || x.Reason == "" {
		t.Errorf("incomplete explanation: %+v", x)
	}

	// A compliant case exists but has nothing to explain.
	code, er = getExplain(t, ts.URL+"/v1/cases/HT-1/explain")
	if code != http.StatusOK || er.Outcome != outcomeCompliant || er.Explanation != nil {
		t.Errorf("explain HT-1 = %d %+v", code, er)
	}

	// An unmonitored case is a 404, like /v1/cases/{id}.
	if code, _ := getExplain(t, ts.URL+"/v1/cases/NO-99/explain"); code != http.StatusNotFound {
		t.Errorf("explain NO-99 = %d, want 404", code)
	}

	// The case view itself carries engine and explanation too.
	_, body := getBody(t, ts.URL+"/v1/cases/HT-10")
	if !strings.Contains(body, `"engine": "interpreted"`) || !strings.Contains(body, `"explanation"`) {
		t.Errorf("case view lacks engine/explanation:\n%s", body)
	}
}

type traceReply struct {
	Held  int        `json:"held"`
	Total uint64     `json:"total"`
	Spans []obs.Span `json:"spans"`
}

func getTraces(t *testing.T, url string) traceReply {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %s", url, resp.Status)
	}
	var tr traceReply
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestTraceparentPropagation: an ingest carrying W3C trace context
// produces one ingest span, one feed span per entry, and one "stages"
// span per batch (traced requests are always stage-timed), all in the
// caller's trace; an untraced ingest records nothing.
func TestTraceparentPropagation(t *testing.T) {
	sc := hospitalScenario(t)
	_, ts := startServer(t, sc, Config{Shards: 4})

	// Untraced bulk load first: the ring must stay empty.
	if resp, _ := post(t, ts.URL+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, sc.Trail)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest: %s", resp.Status)
	}
	if tr := getTraces(t, ts.URL+"/v1/traces"); tr.Total != 0 {
		t.Fatalf("untraced ingest recorded %d spans", tr.Total)
	}

	// Traced ingest of HT-10's entries.
	sub := sc.Trail.ByCase("HT-10")
	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/events?wait=1",
		bytes.NewReader(ndjson(t, sub)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set("traceparent", "00-"+traceID+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("traced ingest: %s", resp.Status)
	}

	tr := getTraces(t, ts.URL+"/v1/traces")
	var ingests, feeds, stages int
	for _, sp := range tr.Spans {
		if sp.TraceID.String() != traceID {
			t.Errorf("span %q left the caller's trace: %s", sp.Name, sp.TraceID)
		}
		switch sp.Name {
		case "ingest":
			ingests++
			if sp.Attrs["accepted"] != fmt.Sprint(sub.Len()) {
				t.Errorf("ingest span attrs: %v", sp.Attrs)
			}
		case "feed":
			feeds++
			if sp.Attrs["case"] != "HT-10" {
				t.Errorf("feed span attrs: %v", sp.Attrs)
			}
		case "stages":
			stages++
			// The stage breakdown rides as span events, one per stage.
			if len(sp.Events) != int(obs.NumStages) {
				t.Errorf("stages span has %d events, want %d: %+v", len(sp.Events), obs.NumStages, sp.Events)
			}
		}
	}
	if ingests != 1 || feeds != sub.Len() || stages < 1 {
		t.Errorf("%d ingest + %d feed + %d stages spans, want 1 + %d + ≥1",
			ingests, feeds, stages, sub.Len())
	}
	if want := sub.Len() + 1 + stages; tr.Held != want {
		t.Errorf("%d spans held, want %d (ingest + one feed per entry + stages per batch)", tr.Held, want)
	}
}

// TestObservabilityMetrics: the PR 5 series — per-purpose verdicts,
// engine counters, span gauges, Go runtime gauges — are present, and a
// compiled checker reports engine=compiled with symbol-cache traffic.
func TestObservabilityMetrics(t *testing.T) {
	sc := hospitalScenario(t)
	checker := hospitalChecker(sc)
	checker.UseCompiled = true
	srv := New(sc.Registry, checker, Config{Shards: 2})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, _ := post(t, ts.URL+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, sc.Trail)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest: %s", resp.Status)
	}
	code, body := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	for _, series := range []string{
		`auditd_purpose_verdicts_total{purpose="HealthcareTreatment",outcome="violation"}`,
		`auditd_purpose_verdicts_total{purpose="HealthcareTreatment",outcome="compliant"}`,
		`auditd_feed_engine_total{engine="compiled"}`,
		`auditd_feed_engine_total{engine="interpreted"}`,
		"auditd_symbol_cache_hits_total",
		"auditd_symbol_cache_hit_ratio",
		"auditd_trace_spans_held 0",
		"auditd_trace_spans_total 0",
		"auditd_quarantine_held 0",
		"auditd_go_goroutines",
		"auditd_go_heap_alloc_bytes",
		"auditd_go_gc_cycles_total",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("metrics output missing %q", series)
		}
	}
	// The hospital purposes compile, so the compiled engine must have
	// consumed entries and hit its symbol cache.
	if strings.Contains(body, `auditd_feed_engine_total{engine="compiled"} 0`) {
		t.Error("compiled checker fed no entries on the compiled engine")
	}
	if strings.Contains(body, "auditd_symbol_cache_hits_total 0\n") {
		t.Error("symbol cache never hit across the Figure 4 trail")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointPersistsExplanation: a dead case's explanation survives
// shutdown, restore, and a different shard layout.
func TestCheckpointPersistsExplanation(t *testing.T) {
	sc := hospitalScenario(t)
	path := filepath.Join(t.TempDir(), "ckpt.json")

	srv1, ts1 := startServer(t, sc, Config{Shards: 3, CheckpointPath: path})
	if resp, _ := post(t, ts1.URL+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, sc.Trail)); resp.StatusCode != http.StatusAccepted {
		t.Fatal("ingest failed")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	srv2, ts2 := startServer(t, sc, Config{Shards: 5, CheckpointPath: path})
	code, er := getExplain(t, ts2.URL+"/v1/cases/HT-10/explain")
	if code != http.StatusOK || er.Explanation == nil || er.Explanation.Task != "T06" {
		t.Fatalf("explanation lost across checkpoint: %d %+v", code, er)
	}
	if err := srv2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}
