package server

import (
	"context"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/encode"
)

// TestBinaryCheckpointRoundTrip mirrors TestCheckpointRoundTrip with
// BinaryCheckpoint on: the snapshot is a flat binary container, the
// restart auto-detects it (into a JSON-writing server, crossing the
// formats), and the verdicts, entry counts and quarantine survive.
func TestBinaryCheckpointRoundTrip(t *testing.T) {
	sc := hospitalScenario(t)
	path := filepath.Join(t.TempDir(), "ckpt.bin")

	cut := sc.Trail.Len() / 2
	head := audit.NewTrail(sc.Trail.Entries()[:cut])
	tail := audit.NewTrail(sc.Trail.Entries()[cut:])

	srv1, ts1 := startServer(t, sc, Config{Shards: 4, CheckpointPath: path, BinaryCheckpoint: true})
	body := append([]byte("this is not json\n"), ndjson(t, head)...)
	resp, res := post(t, ts1.URL+"/v1/events?wait=1", "application/x-ndjson", body)
	if resp.StatusCode != http.StatusAccepted || res.Accepted != cut || res.Quarantined != 1 {
		t.Fatalf("head ingest: %s %+v", resp.Status, res)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	ts1.Close()

	// The file on disk really is the binary container, not JSON.
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !encode.IsBinaryContainer(img) {
		t.Fatalf("checkpoint does not start with the container magic: % x", img[:8])
	}

	// Restore into a JSON-writing server with a different shard count:
	// restore sniffs the format, BinaryCheckpoint only governs writes.
	srv2, ts2 := startServer(t, sc, Config{Shards: 7, CheckpointPath: path})
	resp, res = post(t, ts2.URL+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, tail))
	if resp.StatusCode != http.StatusAccepted || res.Accepted != sc.Trail.Len()-cut {
		t.Fatalf("tail ingest: %s %+v", resp.Status, res)
	}

	got := getCases(t, ts2.URL+"/v1/cases")
	assertOutcomes(t, got, expectedOutcomes(t, sc, sc.Trail))
	for _, v := range got.Cases {
		if n := sc.Trail.ByCase(v.Case).Len(); v.Entries != n {
			t.Errorf("case %s: %d entries after restore+tail, want %d", v.Case, v.Entries, n)
		}
	}
	code, qbody := getBody(t, ts2.URL+"/v1/quarantine")
	if code != http.StatusOK || !strings.Contains(qbody, "this is not json") {
		t.Errorf("quarantine after restore = %d %q", code, qbody)
	}
	if err := srv2.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestBinaryCheckpointRejectsCorruption flips a byte in the container
// and requires Start to fail loudly instead of restoring a torn cut.
func TestBinaryCheckpointRejectsCorruption(t *testing.T) {
	sc := hospitalScenario(t)
	path := filepath.Join(t.TempDir(), "ckpt.bin")

	srv1, ts1 := startServer(t, sc, Config{Shards: 2, CheckpointPath: path, BinaryCheckpoint: true})
	if resp, _ := post(t, ts1.URL+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, sc.Trail)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest: %s", resp.Status)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)-1] ^= 0xff
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	srv2 := New(sc.Registry, hospitalChecker(sc), Config{Shards: 2, CheckpointPath: path})
	if err := srv2.Start(); err == nil {
		srv2.Shutdown(ctx)
		t.Fatal("corrupt binary checkpoint restored without error")
	}
}
