// Package server implements auditd's engine: a long-running, sharded
// purpose-audit service over the paper's online monitor (Section 4's
// "the analysis should be resumed when new actions within the process
// instance are recorded", turned into a deployable process).
//
// Architecture. Ingested entries are routed by core.ShardCase to one of
// N shards; each shard owns a core.Monitor over a Checker.Clone() — all
// clones share the warm per-purpose runtime from PR 1, so the LTS and
// configuration memos are derived once and hit by every shard. Shard
// queues are bounded: a saturated shard answers POST /v1/events with
// 429 + Retry-After instead of buffering without limit (explicit
// backpressure). Verdict state is queryable at GET /v1/cases while the
// stream is still flowing, and the whole live state checkpoints to disk
// periodically and on shutdown, so a restart resumes mid-case instead
// of losing history.
package server

import (
	"context"
	"crypto/ed25519"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/wal"
)

// Config tunes the server; zero values take the documented defaults.
type Config struct {
	// Shards is the monitor worker pool size (default 8).
	Shards int
	// QueueDepth bounds each shard's queue (default 1024); a full
	// queue triggers 429 backpressure.
	QueueDepth int
	// CheckpointPath, when set, enables snapshotting the live state to
	// this file (atomic rename) and restoring it on Start.
	CheckpointPath string
	// CheckpointEvery is the periodic snapshot interval (default 30s;
	// only meaningful with CheckpointPath).
	CheckpointEvery time.Duration
	// BinaryCheckpoint writes checkpoints in the flat binary container
	// format (checkpoint_binary.go) instead of JSON. Restore
	// auto-detects either format regardless of this flag.
	BinaryCheckpoint bool
	// MaxBodyBytes bounds one POST /v1/events body (default 32 MiB).
	MaxBodyBytes int64
	// QuarantineKeep bounds the held quarantine records (default 1024).
	QuarantineKeep int
	// TraceBuffer bounds the in-memory span ring served at GET
	// /v1/traces (default obs.DefaultRingCapacity).
	TraceBuffer int
	// Logger receives structured request/verdict logs (default
	// slog.Default()).
	Logger *slog.Logger

	// WALDir, when set, enables the write-ahead ingest log: every
	// accepted entry is appended (CRC-framed) to segmented log files in
	// this directory BEFORE dispatch, and Start replays the log tail
	// past the checkpoint — a kill -9 loses nothing acknowledged.
	WALDir string
	// WALFsync is the log's durability policy: wal.FsyncAlways,
	// wal.FsyncInterval (default) or wal.FsyncOff.
	WALFsync string
	// WALSegmentBytes rotates log segments at this size (default 64 MiB).
	WALSegmentBytes int64
	// WALFsyncInterval is the background fsync period under the
	// interval policy (default 100ms).
	WALFsyncInterval time.Duration
	// WALFailure selects the degradation when a WAL write fails:
	// WALFailstop (default) wedges ingest entirely — every later POST
	// gets 503 and /readyz fails, so the node is pulled; WALShed sheds
	// only the affected requests with 503 and keeps the node serving
	// queries and checkpoints, /readyz degraded but 200.
	WALFailure string
	// ShardRestartLimit bounds how many times the supervisor restarts a
	// panicking shard worker before failing the shard (default 5).
	ShardRestartLimit int

	// LedgerKey, when set, enables the tamper-evident Merkle audit
	// ledger (DESIGN.md §15): every WAL-appended entry becomes a leaf,
	// batches seal into ed25519-signed chained roots, and GET
	// /v1/proofs/{case} serves offline-checkable inclusion proofs.
	// Requires WALDir — sealing happens after the WAL append, so
	// "acknowledged" means both replayable and provable.
	LedgerKey ed25519.PrivateKey
	// LedgerBatch closes a ledger batch at this many leaves (default
	// ledger.DefaultBatch; 1 = direct ledger, a signed root per entry).
	LedgerBatch int
	// LedgerWait seals a partial batch this long after its first leaf
	// (0 = size/explicit cuts only — the deterministic mode).
	LedgerWait time.Duration

	// StageSample times 1 in N ingest batches through the pipeline
	// stages (decode → WAL append/fsync → queue wait → replay → ledger
	// seal), exported as auditd_stage_latency_seconds{stage=...}.
	// 0 takes the default (obs.DefaultStageSample, 1-in-64), 1 times
	// every batch, negative disables sampling. Requests carrying a W3C
	// traceparent are always timed regardless.
	StageSample int
	// FlightDir is where flight-recorder dumps are written (default
	// os.TempDir()).
	FlightDir string
	// FlightEvents bounds each shard's flight-recorder ring (default
	// obs.DefaultFlightEvents).
	FlightEvents int
}

// WAL failure policies (Config.WALFailure).
const (
	WALFailstop = "failstop"
	WALShed     = "shed"
)

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.QuarantineKeep <= 0 {
		c.QuarantineKeep = 1024
	}
	if c.TraceBuffer <= 0 {
		c.TraceBuffer = obs.DefaultRingCapacity
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.WALFailure == "" {
		c.WALFailure = WALFailstop
	}
	if c.ShardRestartLimit <= 0 {
		c.ShardRestartLimit = 5
	}
	if c.StageSample == 0 {
		c.StageSample = obs.DefaultStageSample
	}
	if c.FlightEvents <= 0 {
		c.FlightEvents = obs.DefaultFlightEvents
	}
	return c
}

// Server is the auditd engine. Build with New, then Start, serve
// Handler over any http.Server, and Shutdown to drain and snapshot.
type Server struct {
	cfg     Config
	reg     *core.Registry
	shards  []*shard
	metrics *metrics
	quar    *quarantine
	mux     *http.ServeMux
	log     *slog.Logger
	// ring holds the most recent spans (GET /v1/traces); tracer writes
	// into it and is handed to every shard for per-entry feed spans.
	ring   *obs.Ring
	tracer *obs.Tracer

	// ingest gate: handlers register in-flight ingests so Shutdown can
	// wait for them before closing the shard queues.
	gate     sync.Mutex
	draining bool
	ingestWG sync.WaitGroup

	started  bool
	ready    bool
	readyMu  sync.RWMutex
	stopCkpt chan struct{}
	ckptDone chan struct{}
	// ckptMu serializes checkpoint writes (ticker vs. shutdown).
	ckptMu sync.Mutex

	// wal is the write-ahead ingest log (nil when WALDir is unset);
	// inflight tracks append→enqueue windows for safe truncation, and
	// walFailed flips under the fail-stop policy when an append fails
	// (see wal.go).
	wal       *wal.Log
	inflight  inflightTracker
	walFailed atomic.Bool

	// ledger seals WAL-appended entries into signed Merkle roots (nil
	// when LedgerKey is unset); ledgerCkptLSN is the last sealed LSN
	// persisted by a successful checkpoint — the WAL truncation clamp
	// that keeps unpersisted leaves replayable (wal.go, checkpoint.go).
	ledger        *ledger.Ledger
	ledgerCkptLSN atomic.Uint64

	// Operational telemetry (DESIGN.md §17). stages decides which
	// batches carry a timing record; flight is the always-on event
	// recorder dumped when something goes wrong; watch fans verdict
	// transitions out to GET /v1/watch subscribers. walErrDumped makes
	// the WAL-failure flight dump a one-shot (the error is sticky, so
	// every later batch would re-trigger it).
	stages       *obs.StageSampler
	flight       *obs.FlightRecorder
	watch        *watchHub
	walErrDumped atomic.Bool
	startTime    time.Time

	// Hot-path log limiters: a poison stream that makes every entry
	// warn must not drown the log (suppressed counts are exported as
	// auditd_log_suppressed_total).
	limVerdict *obs.LogLimiter
	limQuar    *obs.LogLimiter
	limWAL     *obs.LogLimiter
}

// New builds a server over the registry's purposes. The checker
// configures replay (caps, role hierarchy); each shard gets a clone, so
// all shards share its warm caches.
func New(reg *core.Registry, checker *core.Checker, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		reg:     reg,
		metrics: newMetrics(),
		quar:    newQuarantine(cfg.QuarantineKeep),
		mux:     http.NewServeMux(),
		log:     cfg.Logger,
		ring:    obs.NewRing(cfg.TraceBuffer),
	}
	s.tracer = &obs.Tracer{Rec: s.ring}
	s.stages = obs.NewStageSampler(cfg.StageSample)
	s.flight = obs.NewFlightRecorder(cfg.Shards, cfg.FlightEvents, cfg.FlightDir)
	s.watch = newWatchHub()
	s.startTime = time.Now()
	s.limVerdict = obs.NewLogLimiter(warnBurst, warnPerSec)
	s.limQuar = obs.NewLogLimiter(warnBurst, warnPerSec)
	s.limWAL = obs.NewLogLimiter(warnBurst, warnPerSec)
	for i := 0; i < cfg.Shards; i++ {
		sh := newShard(i, checker, cfg.QueueDepth, s.metrics, s.log, reg.PurposeOf, s.tracer)
		// Telemetry wiring happens here rather than in newShard so the
		// constructor's signature stays stable for tests; all of it is
		// set before Start launches the workers.
		sh.flight = s.flight
		sh.watch = s.watch
		sh.warnLim = s.limVerdict
		sh.onDump = func(reason string) { s.DumpFlightRecorder(reason) }
		s.shards = append(s.shards, sh)
	}
	s.routes()
	return s
}

// warnBurst/warnPerSec tune the hot-path log limiters: enough burst
// that a handful of deviating cases log normally, a sustained rate low
// enough that a fully poisoned stream costs ~1 line/s per class.
const (
	warnBurst  = 10
	warnPerSec = 1.0
)

// DumpFlightRecorder writes a flight-recorder dump file (used by the
// SIGQUIT handler, failure paths and tests) and returns its path.
func (s *Server) DumpFlightRecorder(reason string) (string, error) {
	path, err := s.flight.Dump(reason)
	if err != nil {
		s.log.Error("flight recorder dump failed", "reason", reason, "err", err)
		return "", err
	}
	s.log.Info("flight recorder dumped", "reason", reason, "path", path)
	return path, nil
}

// sampleStages decides whether the batch being opened gets a stage
// timing record: always for traced requests (the caller asked to see
// the breakdown), 1-in-N otherwise.
func (s *Server) sampleStages(sc obs.SpanContext) *obs.StageRecord {
	if sc.IsValid() || s.stages.Sample() {
		return obs.NewStageRecord()
	}
	return nil
}

// shardFor routes a case to its shard.
func (s *Server) shardFor(caseID string) *shard {
	return s.shards[core.ShardCase(caseID, len(s.shards))]
}

// caseCount sums live cases across shards.
func (s *Server) caseCount() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.viewCount()
	}
	return n
}

// Start restores the checkpoint (if configured and present), opens the
// write-ahead log and replays its tail through the shards, launches
// the shard workers and the checkpoint loop, and marks the server
// ready. A corrupt WAL fails Start loudly — refusing to boot beats
// silently losing acknowledged entries. It must be called exactly
// once.
func (s *Server) Start() error {
	if s.started {
		return fmt.Errorf("server: already started")
	}
	s.started = true
	if err := s.openLedger(); err != nil {
		return err
	}
	if err := s.restore(); err != nil {
		return err
	}
	if err := s.openWAL(); err != nil {
		return err
	}
	if err := s.replayWAL(); err != nil {
		return err
	}
	for _, sh := range s.shards {
		go sh.run(s.cfg.ShardRestartLimit)
	}
	s.stopCkpt = make(chan struct{})
	s.ckptDone = make(chan struct{})
	go s.checkpointLoop()
	s.setReady(true)
	s.log.Info("auditd started", "shards", len(s.shards), "queue_depth", s.cfg.QueueDepth,
		"checkpoint", s.cfg.CheckpointPath, "wal", s.cfg.WALDir,
		"purposes", len(s.reg.Purposes()), "cases", s.caseCount())
	return nil
}

// Shutdown drains and stops the server: new ingests are refused,
// in-flight ingests finish, shard queues are drained to their monitors,
// and a final checkpoint is written. The context bounds the wait: on
// deadline, whatever DID drain is still checkpointed (stragglers keep
// their previous checkpoint state, and their unfed entries stay in the
// WAL for the next boot to replay), the stragglers are logged, and the
// deadline error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.setReady(false)

	// Refuse new ingests, then wait for in-flight ones: after this no
	// goroutine writes the shard queues except the checkpoint loop.
	s.gate.Lock()
	s.draining = true
	s.gate.Unlock()

	// Stop the checkpoint loop before closing queues (it enqueues
	// control messages).
	if s.stopCkpt != nil {
		close(s.stopCkpt)
		<-s.ckptDone
	}

	done := make(chan struct{})
	go func() {
		s.ingestWG.Wait()
		for _, sh := range s.shards {
			close(sh.queue)
		}
		for _, sh := range s.shards {
			<-sh.done
		}
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return s.shutdownExpired(ctx)
	}

	// Workers are gone. Seal the ledger's open tail first, so every
	// acknowledged entry is provable after a clean restart, and the
	// final checkpoint carries the sealed batches.
	if s.ledger != nil {
		s.ledger.Cut()
	}
	// Monitors are safe to read directly.
	if err := s.checkpointFinal(); err != nil {
		s.log.Error("final checkpoint failed", "err", err)
		s.closeWAL(false)
		if s.ledger != nil {
			s.ledger.Close()
		}
		return err
	}
	// Every acknowledged entry is now in the checkpoint; the WAL can
	// shed its sealed history.
	s.closeWAL(true)
	if s.ledger != nil {
		s.ledger.Close()
	}
	s.log.Info("auditd drained and stopped", "cases", s.caseCount())
	return nil
}

// shutdownExpired is Shutdown's deadline path: checkpoint the shards
// that finished draining, carry the stragglers' cases over from the
// previous checkpoint (a consistent, if older, cut — their newer
// entries are still in the WAL), and report who was stuck.
func (s *Server) shutdownExpired(ctx context.Context) error {
	var drained []*shard
	var stuck []int
	stale := map[int]bool{}
	for _, sh := range s.shards {
		select {
		case <-sh.done:
			drained = append(drained, sh)
		default:
			stuck = append(stuck, sh.id)
			stale[sh.id] = true
		}
	}
	if err := s.checkpointPartial(drained, stale); err != nil {
		s.log.Error("partial checkpoint failed", "err", err)
	}
	// No WAL truncation here: the stragglers' unfed entries must
	// survive for the next boot's replay.
	s.closeWAL(false)
	if s.ledger != nil {
		s.ledger.Close()
	}
	s.log.Error("drain deadline exceeded; straggler shards abandoned",
		"stragglers", stuck, "drained", len(drained))
	return fmt.Errorf("server: drain deadline exceeded, %d shard(s) still busy %v: %w",
		len(stuck), stuck, ctx.Err())
}

// Crash stops the server the way a kill -9 would leave it: no final
// checkpoint, no WAL truncation — the on-disk state is a stale (or
// absent) checkpoint plus the full log. Chaos and recovery-test
// support; production shutdown is Shutdown.
func (s *Server) Crash() {
	s.setReady(false)
	s.gate.Lock()
	s.draining = true
	s.gate.Unlock()
	if s.stopCkpt != nil {
		close(s.stopCkpt)
		<-s.ckptDone
	}
	s.ingestWG.Wait()
	for _, sh := range s.shards {
		close(sh.queue)
	}
	for _, sh := range s.shards {
		<-sh.done
	}
	s.closeWAL(false)
	if s.ledger != nil {
		// No Cut: like the WAL, the open tail exists only in the log
		// and is rebuilt by replay at next boot.
		s.ledger.Close()
	}
}

// accepting registers an ingest if the server is not draining.
func (s *Server) accepting() bool {
	s.gate.Lock()
	defer s.gate.Unlock()
	if s.draining {
		return false
	}
	s.ingestWG.Add(1)
	return true
}

func (s *Server) setReady(v bool) {
	s.readyMu.Lock()
	changed := s.ready != v
	s.ready = v
	s.readyMu.Unlock()
	if changed {
		detail := "not_ready"
		if v {
			detail = "ready"
		}
		s.flight.Record(-1, obs.FlightEvent{Kind: obs.FlightReadiness, Detail: detail})
	}
}

func (s *Server) isReady() bool {
	s.readyMu.RLock()
	defer s.readyMu.RUnlock()
	return s.ready
}

// Handler returns the HTTP surface with request logging.
func (s *Server) Handler() http.Handler { return s.logRequests(s.mux) }

// Flush blocks until every entry enqueued before the call has been fed
// to its monitor — the barrier behind POST /v1/events?wait=1, giving
// tests and the CI smoke a deterministic read-your-writes handle.
func (s *Server) Flush() {
	var waits []<-chan struct{}
	for _, sh := range s.shards {
		waits = append(waits, sh.barrier())
	}
	for _, w := range waits {
		<-w
	}
}

// logRequests wraps the mux with structured request logging.
func (s *Server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		lw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(lw, r)
		s.log.Info("request",
			"method", r.Method, "path", r.URL.Path, "status", lw.code,
			"dur_ms", float64(time.Since(start).Microseconds())/1000, "remote", r.RemoteAddr)
	})
}

type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so streaming handlers (the
// /v1/watch SSE stream) work through the logging wrapper.
func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// IngestEntries routes pre-decoded entries through the batched
// dispatch path, grouping consecutive same-shard runs into one queue
// message each. It returns how many entries were accepted and whether
// all were; false mirrors the HTTP 429 contract (a saturated shard or
// a draining server stopped the ingest). This is the in-process
// ingestion surface used by benchmarks and embedders.
func (s *Server) IngestEntries(entries []audit.Entry) (int, bool) {
	if s.walRefusing() || !s.accepting() {
		return 0, false
	}
	defer s.ingestWG.Done()
	b := s.newBatcher(obs.SpanContext{})
	for i := range entries {
		if !b.add(entries[i], i+1) {
			return b.accepted, false
		}
	}
	if !b.flush() {
		return b.accepted, false
	}
	return b.accepted, true
}

// IngestEntry routes one entry through single-entry dispatch — the
// unbatched baseline (one pooled slice, one credit acquisition, one
// channel send per entry).
func (s *Server) IngestEntry(e audit.Entry) bool {
	if s.walRefusing() || !s.accepting() {
		return false
	}
	defer s.ingestWG.Done()
	single := getBatch()
	*single = append(*single, e)
	if s.enqueueBatch(s.shardFor(e.Case), single, obs.SpanContext{}, nil) {
		s.metrics.eventsIngested.Add(1)
		return true
	}
	putBatch(single)
	s.metrics.eventsRejected.Add(1)
	return false
}
