package server

import (
	"log/slog"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/obs"
)

// A shard owns one core.Monitor (over a Checker.Clone sharing the warm
// per-purpose runtime) and consumes its queue on a single goroutine, so
// the monitor is never touched concurrently. Cases are routed to shards
// by core.ShardCase, which together with FIFO queues preserves the
// monitor sharding contract: verdicts are identical to a single monitor
// consuming the whole trail.
//
// Control traffic (barriers, snapshot requests) travels through the
// same queue as entries, so a snapshot is a consistent point-in-time
// cut of the shard: everything enqueued before it is reflected,
// everything after is not.
type shard struct {
	id    int
	queue chan shardMsg
	done  chan struct{}
	// depth is the configured queue bound in entries; credits is how
	// many of them are free. Batches carry whole entry runs through the
	// queue, so the channel alone cannot bound entries — credits are
	// acquired (per entry) on enqueue and released once the batch has
	// been fed, keeping QueueDepth's meaning independent of batching.
	depth   int64
	credits atomic.Int64

	mon     *core.Monitor
	metrics *metrics
	log     *slog.Logger
	// tracer records per-entry feed spans — only for entries whose
	// ingest carried W3C trace context (see feed), so untraced bulk
	// loads cost nothing and the ring isn't flooded.
	tracer *obs.Tracer
	// purposeOf resolves a case id to its purpose name (registry
	// lookup), for the view's Purpose field.
	purposeOf func(string) string

	// views is the queryable verdict state, written only by the shard
	// worker, read by HTTP handlers.
	mu    sync.RWMutex
	views map[string]*CaseView
}

// shardMsg is one unit of shard queue traffic: exactly one field is
// set.
type shardMsg struct {
	// batch is a run of consecutive entries routed to this shard. The
	// slice comes from batchPool; the worker recycles it after feeding.
	batch *[]audit.Entry
	// sc is the ingest span's context when the submitting request
	// carried a traceparent header; the zero value otherwise. It rides
	// the queue so the feed span lands in the caller's trace.
	sc obs.SpanContext
	// barrier is closed by the worker when it reaches the message —
	// everything enqueued before it has then been fed.
	barrier chan<- struct{}
	// snap receives the shard's consistent state cut.
	snap chan<- shardDump
}

// shardDump is one shard's contribution to a checkpoint.
type shardDump struct {
	state *core.MonitorState
	views map[string]*CaseView
}

// CaseView is the queryable verdict state of one case, exposed at
// GET /v1/cases. Outcome is "compliant" (so far), "violation" or
// "indeterminate"; a dead case's first verdict is sticky, matching the
// monitor's semantics.
type CaseView struct {
	Case    string `json:"case"`
	Purpose string `json:"purpose"`
	Entries int    `json:"entries"`
	Outcome string `json:"outcome"`
	// Configurations is the live configuration count (0 once dead).
	Configurations int `json:"configurations,omitempty"`
	// Violation/Indeterminate carry the first deviating verdict's
	// diagnosis.
	Violation     string `json:"violation,omitempty"`
	Indeterminate string `json:"indeterminate,omitempty"`
	// Engine is the replay engine carrying the case ("compiled" or
	// "interpreted").
	Engine string `json:"engine,omitempty"`
	// Explanation is the structured account of the first deviation
	// (GET /v1/cases/{id}/explain); nil while compliant. Sticky like
	// Outcome, and persisted in checkpoints.
	Explanation *core.Explanation `json:"explanation,omitempty"`
	// Updated is the log time of the entry that last changed this view.
	Updated time.Time `json:"updated"`
	Shard   int       `json:"shard"`
}

const (
	outcomeCompliant     = "compliant"
	outcomeViolation     = "violation"
	outcomeIndeterminate = "indeterminate"
)

func newShard(id int, checker *core.Checker, depth int, m *metrics, log *slog.Logger, purposeOf func(string) string, tracer *obs.Tracer) *shard {
	sh := &shard{
		id:        id,
		queue:     make(chan shardMsg, depth),
		done:      make(chan struct{}),
		depth:     int64(depth),
		mon:       core.NewMonitor(checker.Clone()),
		metrics:   m,
		log:       log,
		purposeOf: purposeOf,
		tracer:    tracer,
		views:     map[string]*CaseView{},
	}
	sh.credits.Store(sh.depth)
	return sh
}

// pendingEntries reports how many accepted entries have not been fed
// yet (queued batches plus the batch currently being fed).
func (sh *shard) pendingEntries() int64 { return sh.depth - sh.credits.Load() }

// run consumes the queue until it is closed, then drains nothing more
// and signals done. Only this goroutine touches sh.mon after Start.
func (sh *shard) run() {
	defer close(sh.done)
	for msg := range sh.queue {
		switch {
		case msg.batch != nil:
			entries := *msg.batch
			for i := range entries {
				sh.feed(entries[i], msg.sc)
			}
			sh.credits.Add(int64(len(entries)))
			putBatch(msg.batch)
		case msg.barrier != nil:
			close(msg.barrier)
		case msg.snap != nil:
			msg.snap <- sh.dump()
		}
	}
}

// tryEnqueueBatch offers a run of entries to the queue without
// blocking; false means the shard cannot hold the whole batch and the
// caller must apply backpressure (typically by degrading to
// single-entry enqueues — see batcher.flush). On success the worker
// owns the slice and recycles it. sc carries the submitting request's
// trace context (zero when untraced).
func (sh *shard) tryEnqueueBatch(b *[]audit.Entry, sc obs.SpanContext) bool {
	n := int64(len(*b))
	for {
		c := sh.credits.Load()
		if c < n {
			return false
		}
		if sh.credits.CompareAndSwap(c, c-n) {
			break
		}
	}
	select {
	case sh.queue <- shardMsg{batch: b, sc: sc}:
		return true
	default:
		// Queue slots are scarcer than credits only transiently (each
		// queued message holds at least one credit); hand the credits
		// back and report saturation.
		sh.credits.Add(n)
		return false
	}
}

// barrier enqueues a flush marker (blocking: control traffic may wait
// for queue space) and returns the channel closed when it is reached.
func (sh *shard) barrier() <-chan struct{} {
	ch := make(chan struct{})
	sh.queue <- shardMsg{barrier: ch}
	return ch
}

// requestDump asks the running worker for a consistent cut.
func (sh *shard) requestDump() <-chan shardDump {
	ch := make(chan shardDump, 1)
	sh.queue <- shardMsg{snap: ch}
	return ch
}

// dump exports monitor state and a copy of the views. Called either by
// the worker goroutine (running) or after the worker exited (final
// checkpoint).
func (sh *shard) dump() shardDump {
	sh.mu.RLock()
	views := make(map[string]*CaseView, len(sh.views))
	for id, v := range sh.views {
		c := *v
		views[id] = &c
	}
	sh.mu.RUnlock()
	return shardDump{state: sh.mon.State(), views: views}
}

// feed advances one case by one entry and folds the verdict into the
// case view and the metrics. When the entry's ingest carried trace
// context, the feed is recorded as a child span in the caller's trace.
func (sh *shard) feed(e audit.Entry, sc obs.SpanContext) {
	var span *obs.ActiveSpan
	if sc.IsValid() {
		span = sh.tracer.StartSpan(sc, "feed")
		span.SetAttr("shard", strconv.Itoa(sh.id))
		span.SetAttr("case", e.Case)
		span.SetAttr("task", e.Task)
	}
	start := time.Now()
	v, err := sh.mon.Feed(e)
	sh.metrics.feedLatency.observe(time.Since(start))
	if err != nil {
		// Genuine engine error (not a verdict): count it, log it, and
		// leave the case view untouched — the entry is lost, which the
		// feed-errors counter makes visible.
		sh.metrics.feedErrors.Add(1)
		sh.log.Error("feed failed", "shard", sh.id, "case", e.Case, "err", err,
			"trace_id", traceField(sc))
		span.SetAttr("error", err.Error())
		span.End()
		return
	}
	sh.metrics.countEngine(v.Engine)

	sh.mu.Lock()
	view, ok := sh.views[e.Case]
	if !ok {
		view = &CaseView{
			Case: e.Case, Shard: sh.id, Outcome: outcomeCompliant,
			Purpose: sh.purposeOf(e.Case),
		}
		sh.views[e.Case] = view
	}
	view.Entries = v.CaseEntries
	view.Updated = e.Time
	view.Configurations = v.Configurations
	if v.Engine != "" {
		view.Engine = v.Engine
	}
	switch {
	case v.OK:
		sh.metrics.verdictsOK.Add(1)
		sh.metrics.countPurposeVerdict(view.Purpose, outcomeCompliant)
	case v.Indeterminate != nil:
		sh.metrics.verdictsIndeterminate.Add(1)
		sh.metrics.countPurposeVerdict(view.Purpose, outcomeIndeterminate)
		if view.Outcome == outcomeCompliant {
			view.Outcome = outcomeIndeterminate
			view.Indeterminate = v.Indeterminate.String()
			view.Explanation = v.Explanation
			sh.log.Warn("case indeterminate", "shard", sh.id, "case", e.Case,
				"cause", v.Indeterminate.Cause.String(), "trace_id", traceField(sc))
		}
	case v.Violation != nil:
		sh.metrics.verdictsViolation.Add(1)
		sh.metrics.countPurposeVerdict(view.Purpose, outcomeViolation)
		if view.Outcome == outcomeCompliant {
			view.Outcome = outcomeViolation
			view.Violation = v.Violation.String()
			view.Explanation = v.Explanation
			sh.log.Warn("case violated", "shard", sh.id, "case", e.Case,
				"reason", v.Violation.Reason, "trace_id", traceField(sc))
		}
	}
	outcome := view.Outcome
	sh.mu.Unlock()

	if span != nil {
		span.SetAttr("outcome", outcome)
		span.End()
	}
}

// traceField renders the trace id for log correlation; empty when the
// entry was untraced (slog drops nothing, so empty is fine).
func traceField(sc obs.SpanContext) string {
	if !sc.IsValid() {
		return ""
	}
	return sc.TraceID.String()
}

// view returns a copy of one case's view.
func (sh *shard) view(caseID string) (CaseView, bool) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	v, ok := sh.views[caseID]
	if !ok {
		return CaseView{}, false
	}
	return *v, true
}

// viewCount returns the number of cases with live view state.
func (sh *shard) viewCount() int {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.views)
}

// collectViews appends copies of views passing the filter.
func (sh *shard) collectViews(dst []CaseView, accept func(*CaseView) bool) []CaseView {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for _, v := range sh.views {
		if accept == nil || accept(v) {
			dst = append(dst, *v)
		}
	}
	return dst
}

// loadViews seeds the view table from a checkpoint (before the worker
// starts; no locking concerns, but take the lock for form).
func (sh *shard) loadViews(views map[string]*CaseView) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for id, v := range views {
		c := *v
		c.Shard = sh.id
		sh.views[id] = &c
	}
}
