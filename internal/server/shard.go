package server

import (
	"fmt"
	"log/slog"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/obs"
)

// A shard owns one core.Monitor (over a Checker.Clone sharing the warm
// per-purpose runtime) and consumes its queue on a single goroutine, so
// the monitor is never touched concurrently. Cases are routed to shards
// by core.ShardCase, which together with FIFO queues preserves the
// monitor sharding contract: verdicts are identical to a single monitor
// consuming the whole trail.
//
// Control traffic (barriers, snapshot requests) travels through the
// same queue as entries, so a snapshot is a consistent point-in-time
// cut of the shard: everything enqueued before it is reflected,
// everything after is not.
type shard struct {
	id    int
	queue chan shardMsg
	done  chan struct{}
	// depth is the configured queue bound in entries; credits is how
	// many of them are free. Batches carry whole entry runs through the
	// queue, so the channel alone cannot bound entries — credits are
	// acquired (per entry) on enqueue and released once the batch has
	// been fed, keeping QueueDepth's meaning independent of batching.
	depth   int64
	credits atomic.Int64

	// enqMu serializes the WAL-append + queue-send pair for this shard:
	// the WAL's per-case record order must equal feed order, or boot
	// replay would re-feed entries in a different order than the
	// checkpoint counted them (durable dispatch in wal.go).
	enqMu sync.Mutex

	// Supervision state. restarts counts worker panics survived so far;
	// failed flips when the restart budget is exhausted, after which new
	// batches are refused and a drainer keeps the queue live for
	// control traffic (barriers, snapshots) so Flush and Shutdown never
	// wedge on a dead shard.
	restarts atomic.Int64
	failed   atomic.Bool
	// pending is the batch being fed, tracked in the shard (not on the
	// worker's stack) so a restart after a panic resumes the batch at
	// the entry AFTER the one that blew up — exactly one entry is
	// dropped per panic, and its credits are still returned.
	pending    *[]audit.Entry
	pendingIdx int
	pendingSC  obs.SpanContext
	pendingLSN uint64
	// pendingStages is the batch's stage timing record (nil when
	// unsampled); it lives on the shard so replay time keeps
	// accumulating across a panic-resume.
	pendingStages *obs.StageRecord
	// panicHook, when set (tests only), runs before each feed — the
	// injection point for supervisor chaos tests.
	panicHook func(*audit.Entry)
	// snapHook, when set (tests only), runs at the start of every dump —
	// the injection point for dump-panic supervision tests.
	snapHook func()

	// lastFedLSN is the WAL LSN of the last entry whose feed completed
	// (0 without a WAL). When the shard fails, everything it dropped —
	// queued batches its drainer discarded, the entry whose feed
	// panicked — exists only in the WAL, all above this mark (per-shard
	// WAL order is feed order), so checkpoint truncation clamps to it
	// (walSafeLSN) to keep those records replayable at next boot.
	lastFedLSN atomic.Uint64

	mon     *core.Monitor
	metrics *metrics
	log     *slog.Logger
	// tracer records per-entry feed spans — only for entries whose
	// ingest carried W3C trace context (see feed), so untraced bulk
	// loads cost nothing and the ring isn't flooded.
	tracer *obs.Tracer
	// purposeOf resolves a case id to its purpose name (registry
	// lookup), for the view's Purpose field.
	purposeOf func(string) string

	// Operational telemetry, wired by the server after construction
	// (before Start). flight records coarse per-batch pipeline events;
	// onDump triggers a flight-recorder dump (panic, shard failure);
	// watch receives verdict transitions for GET /v1/watch; warnLim
	// rate-limits the per-entry deviation warnings.
	flight  *obs.FlightRecorder
	onDump  func(reason string)
	watch   *watchHub
	warnLim *obs.LogLimiter
	// highWater is the worst queue occupancy seen (entries), reported
	// by /v1/status; hwRecorded is the occupancy at the last flight
	// event, so the ring gets step-sized marks instead of one event per
	// +1 creep.
	highWater  atomic.Int64
	hwRecorded atomic.Int64

	// views is the queryable verdict state, written only by the shard
	// worker, read by HTTP handlers.
	mu    sync.RWMutex
	views map[string]*CaseView
}

// shardMsg is one unit of shard queue traffic: exactly one of batch,
// barrier, snap is set.
type shardMsg struct {
	// batch is a run of consecutive entries routed to this shard. The
	// slice comes from batchPool; the worker recycles it after feeding.
	batch *[]audit.Entry
	// firstLSN is the WAL LSN of the batch's first entry (consecutive
	// from there); 0 when the server runs without a WAL. The feed
	// stamps each case view with its last applied LSN, which is what
	// boot replay uses to skip records the checkpoint already covers.
	firstLSN uint64
	// sc is the ingest span's context when the submitting request
	// carried a traceparent header; the zero value otherwise. It rides
	// the queue so the feed span lands in the caller's trace.
	sc obs.SpanContext
	// stages is the batch's stage timing record (nil when unsampled);
	// it rides the queue so the worker can close the queue-wait stage
	// and time the replay.
	stages *obs.StageRecord
	// barrier is closed by the worker when it reaches the message —
	// everything enqueued before it has then been fed.
	barrier chan<- struct{}
	// snap receives the shard's consistent state cut.
	snap chan<- shardDump
}

// shardDump is one shard's contribution to a checkpoint. incomplete
// marks a reply whose dump panicked: the requester got an answer (so
// the checkpoint loop never wedges) but must discard the whole round —
// persisting a cut missing this shard's cases would lose them.
type shardDump struct {
	state      *core.MonitorState
	views      map[string]*CaseView
	incomplete bool
}

// CaseView is the queryable verdict state of one case, exposed at
// GET /v1/cases. Outcome is "compliant" (so far), "violation" or
// "indeterminate"; a dead case's first verdict is sticky, matching the
// monitor's semantics.
type CaseView struct {
	Case    string `json:"case"`
	Purpose string `json:"purpose"`
	Entries int    `json:"entries"`
	Outcome string `json:"outcome"`
	// Configurations is the live configuration count (0 once dead).
	Configurations int `json:"configurations,omitempty"`
	// Violation/Indeterminate carry the first deviating verdict's
	// diagnosis.
	Violation     string `json:"violation,omitempty"`
	Indeterminate string `json:"indeterminate,omitempty"`
	// Engine is the replay engine carrying the case ("compiled" or
	// "interpreted").
	Engine string `json:"engine,omitempty"`
	// Explanation is the structured account of the first deviation
	// (GET /v1/cases/{id}/explain); nil while compliant. Sticky like
	// Outcome, and persisted in checkpoints.
	Explanation *core.Explanation `json:"explanation,omitempty"`
	// Updated is the log time of the entry that last changed this view.
	Updated time.Time `json:"updated"`
	Shard   int       `json:"shard"`
	// WalLSN is the write-ahead-log sequence number of the case's last
	// fed entry (0 without a WAL). Checkpoints persist it, and boot
	// replay skips the case's WAL records at or below it — the
	// exactly-once contract between checkpoint and log.
	WalLSN uint64 `json:"wal_lsn,omitempty"`
}

const (
	outcomeCompliant     = "compliant"
	outcomeViolation     = "violation"
	outcomeIndeterminate = "indeterminate"
)

func newShard(id int, checker *core.Checker, depth int, m *metrics, log *slog.Logger, purposeOf func(string) string, tracer *obs.Tracer) *shard {
	sh := &shard{
		id:        id,
		queue:     make(chan shardMsg, depth),
		done:      make(chan struct{}),
		depth:     int64(depth),
		mon:       core.NewMonitor(checker.Clone()),
		metrics:   m,
		log:       log,
		purposeOf: purposeOf,
		tracer:    tracer,
		views:     map[string]*CaseView{},
	}
	sh.credits.Store(sh.depth)
	return sh
}

// pendingEntries reports how many accepted entries have not been fed
// yet (queued batches plus the batch currently being fed).
func (sh *shard) pendingEntries() int64 { return sh.depth - sh.credits.Load() }

// run is the supervised worker loop: runOnce consumes the queue until
// it is closed (clean exit) or panics, in which case the supervisor
// restarts it — with exponential backoff, up to restartLimit times.
// Past the budget the shard is failed: its monitor stops, new batches
// are refused with backpressure, and a drainer keeps consuming the
// queue (returning credits, honoring barriers, serving frozen
// snapshots) so nothing blocking on this shard ever wedges. Only this
// goroutine touches sh.mon after Start.
func (sh *shard) run(restartLimit int) {
	defer close(sh.done)
	for {
		if sh.runOnce() {
			return
		}
		sh.metrics.shardPanics.Add(1)
		n := sh.restarts.Add(1)
		if n > int64(restartLimit) {
			sh.failed.Store(true)
			sh.metrics.shardsFailed.Add(1)
			sh.log.Error("shard failed: restart budget exhausted, draining without feeding",
				"shard", sh.id, "restarts", n-1)
			sh.flight.Record(sh.id, obs.FlightEvent{Kind: obs.FlightShardFail, N: int(n - 1)})
			if sh.onDump != nil {
				sh.onDump("shard_failed")
			}
			sh.drainFailed()
			return
		}
		// 5ms, 10ms, 20ms ... capped at 320ms: enough to ride out a
		// tight panic loop without parking the queue for long.
		backoff := (5 * time.Millisecond) << min(uint(n-1), 6)
		sh.log.Warn("shard worker restarting after panic",
			"shard", sh.id, "restart", n, "backoff", backoff)
		sh.flight.Record(sh.id, obs.FlightEvent{Kind: obs.FlightRestart, N: int(n), Detail: backoff.String()})
		time.Sleep(backoff)
	}
}

// runOnce consumes the queue until closed. It returns true on a clean
// queue-close and false if a panic unwound it (recovered here, with
// the stack logged; the interrupted batch stays in sh.pending for the
// next incarnation to resume).
func (sh *shard) runOnce() (clean bool) {
	defer func() {
		if r := recover(); r != nil {
			ev := obs.FlightEvent{Kind: obs.FlightPanic, Detail: fmt.Sprint(r)}
			if sh.pending != nil {
				// Exactly the entry being fed is lost; feedPending
				// already advanced past it.
				sh.metrics.entriesDropped.Add(1)
				if i := sh.pendingIdx - 1; i >= 0 && i < len(*sh.pending) {
					// The poisoned entry: feedPending advances the cursor
					// before feeding, so it sits one behind.
					e := (*sh.pending)[i]
					ev.Case = e.Case
					ev.Detail = fmt.Sprintf("task=%s: %v", e.Task, r)
					if sh.pendingLSN > 0 {
						ev.LSN = sh.pendingLSN + uint64(i)
					}
				}
			}
			sh.flight.Record(sh.id, ev)
			sh.log.Error("shard worker panicked",
				"shard", sh.id, "panic", r, "stack", string(debug.Stack()))
			if sh.onDump != nil {
				sh.onDump("shard_panic")
			}
		}
	}()
	if sh.pending != nil {
		sh.feedPending()
	}
	for msg := range sh.queue {
		switch {
		case msg.batch != nil:
			msg.stages.MarkDequeued()
			sh.pending, sh.pendingIdx, sh.pendingSC, sh.pendingLSN = msg.batch, 0, msg.sc, msg.firstLSN
			sh.pendingStages = msg.stages
			sh.feedPending()
		case msg.barrier != nil:
			close(msg.barrier)
		case msg.snap != nil:
			sh.serveSnap(msg.snap)
		}
	}
	return true
}

// serveSnap replies to a snapshot request with a guaranteed answer: if
// dump panics (a monitor corrupted by the very fault supervision exists
// for), the deferred send delivers an incomplete dump before the panic
// unwinds into the supervisor — checkpointRunning must never block
// forever on a reply that isn't coming. The reply channel is buffered
// (requestDump), so neither send can block.
func (sh *shard) serveSnap(ch chan<- shardDump) {
	sent := false
	defer func() {
		if !sent {
			ch <- shardDump{incomplete: true}
		}
	}()
	d := sh.dump()
	ch <- d
	sent = true
}

// feedPending feeds the in-progress batch from its cursor, then
// returns its credits and recycles it. The cursor advances BEFORE each
// feed, so when a feed panics the supervisor's resume skips exactly
// the poisonous entry instead of re-feeding it into another panic.
func (sh *shard) feedPending() {
	entries := *sh.pending
	var replayStart time.Time
	if sh.pendingStages != nil {
		replayStart = time.Now()
	}
	for sh.pendingIdx < len(entries) {
		i := sh.pendingIdx
		sh.pendingIdx++
		var lsn uint64
		if sh.pendingLSN > 0 {
			lsn = sh.pendingLSN + uint64(i)
		}
		sh.feed(entries[i], sh.pendingSC, lsn)
	}
	if sh.pendingStages != nil {
		sh.pendingStages.Add(obs.StageReplay, time.Since(replayStart))
		sh.finishStages(len(entries))
		sh.pendingStages = nil
	}
	if len(entries) > 0 {
		sh.flight.Record(sh.id, obs.FlightEvent{
			Kind: obs.FlightBatchFed, Case: entries[0].Case,
			N: len(entries), LSN: sh.pendingLSN,
		})
	}
	sh.credits.Add(int64(len(entries)))
	putBatch(sh.pending)
	sh.pending = nil
}

// finishStages folds a completed batch's timing record into the stage
// histograms and — when the ingest was traced — into a "stages" child
// span whose events carry the per-stage breakdown.
func (sh *shard) finishStages(n int) {
	rec := sh.pendingStages
	sh.metrics.observeStages(rec)
	if !sh.pendingSC.IsValid() {
		return
	}
	sp := sh.tracer.StartSpan(sh.pendingSC, "stages")
	if sp == nil {
		return
	}
	sp.SetAttr("shard", strconv.Itoa(sh.id))
	sp.SetAttr("entries", strconv.Itoa(n))
	for _, st := range obs.Stages() {
		sp.AddEvent(st.String(), "dur", rec.Dur(st).String())
	}
	sp.End()
}

// drainFailed is the terminal loop of a failed shard: every batch is
// dropped (counted — and still in the WAL, so a restart recovers it),
// credits are returned so producers never leak capacity, barriers
// close and snapshots serve the frozen pre-failure state.
func (sh *shard) drainFailed() {
	if sh.pending != nil {
		entries := *sh.pending
		sh.metrics.entriesDropped.Add(int64(len(entries) - sh.pendingIdx))
		sh.credits.Add(int64(len(entries)))
		putBatch(sh.pending)
		sh.pending = nil
		sh.pendingStages = nil
	}
	for msg := range sh.queue {
		switch {
		case msg.batch != nil:
			n := int64(len(*msg.batch))
			sh.metrics.entriesDropped.Add(n)
			sh.credits.Add(n)
			putBatch(msg.batch)
		case msg.barrier != nil:
			close(msg.barrier)
		case msg.snap != nil:
			sh.drainSnap(msg.snap)
		}
	}
}

// drainSnap serves a snapshot from the drainer, recovering a dump
// panic: the terminal loop has no supervisor above it, and an escaped
// panic here would take down the whole process. The requester still
// gets serveSnap's incomplete reply.
func (sh *shard) drainSnap(ch chan<- shardDump) {
	defer func() {
		if r := recover(); r != nil {
			sh.log.Error("failed shard's dump panicked",
				"shard", sh.id, "panic", r, "stack", string(debug.Stack()))
		}
	}()
	sh.serveSnap(ch)
}

// tryEnqueueBatch offers a run of entries to the queue without
// blocking; false means the shard cannot hold the whole batch and the
// caller must apply backpressure (typically by degrading to
// single-entry enqueues — see batcher.flush). On success the worker
// owns the slice and recycles it. sc carries the submitting request's
// trace context (zero when untraced).
func (sh *shard) tryEnqueueBatch(b *[]audit.Entry, sc obs.SpanContext, rec *obs.StageRecord) bool {
	n := int64(len(*b))
	if !sh.reserve(n) {
		return false
	}
	rec.MarkEnqueued()
	select {
	case sh.queue <- shardMsg{batch: b, sc: sc, stages: rec}:
		sh.noteHighWater()
		return true
	default:
		// Queue slots are scarcer than credits only transiently (each
		// queued message holds at least one credit); hand the credits
		// back and report saturation.
		sh.credits.Add(n)
		return false
	}
}

// noteHighWater tracks the shard's worst queue occupancy. The running
// maximum feeds /v1/status; the flight ring only gets a mark when the
// maximum grew by at least a depth/8 step (or hit the ceiling), so a
// slow creep doesn't flood it.
func (sh *shard) noteHighWater() {
	p := sh.pendingEntries()
	for {
		hw := sh.highWater.Load()
		if p <= hw {
			return
		}
		if !sh.highWater.CompareAndSwap(hw, p) {
			continue
		}
		step := sh.depth / 8
		if step < 1 {
			step = 1
		}
		last := sh.hwRecorded.Load()
		if (p >= last+step || p >= sh.depth) && sh.hwRecorded.CompareAndSwap(last, p) {
			sh.flight.Record(sh.id, obs.FlightEvent{Kind: obs.FlightHighWater, N: int(p)})
		}
		return
	}
}

// reserve acquires n entry credits, or none. A failed shard refuses
// all reservations: accepting entries its drainer would drop silently
// is worse than honest backpressure.
func (sh *shard) reserve(n int64) bool {
	if sh.failed.Load() {
		return false
	}
	for {
		c := sh.credits.Load()
		if c < n {
			return false
		}
		if sh.credits.CompareAndSwap(c, c-n) {
			return true
		}
	}
}

// barrier enqueues a flush marker (blocking: control traffic may wait
// for queue space) and returns the channel closed when it is reached.
func (sh *shard) barrier() <-chan struct{} {
	ch := make(chan struct{})
	sh.queue <- shardMsg{barrier: ch}
	return ch
}

// requestDump asks the running worker for a consistent cut.
func (sh *shard) requestDump() <-chan shardDump {
	ch := make(chan shardDump, 1)
	sh.queue <- shardMsg{snap: ch}
	return ch
}

// dump exports monitor state and a copy of the views. Called either by
// the worker goroutine (running) or after the worker exited (final
// checkpoint).
func (sh *shard) dump() shardDump {
	if sh.snapHook != nil {
		sh.snapHook()
	}
	sh.mu.RLock()
	views := make(map[string]*CaseView, len(sh.views))
	for id, v := range sh.views {
		c := *v
		views[id] = &c
	}
	sh.mu.RUnlock()
	return shardDump{state: sh.mon.State(), views: views}
}

// feed advances one case by one entry and folds the verdict into the
// case view and the metrics. lsn is the entry's WAL record number (0
// without a WAL), stamped into the view for boot replay. When the
// entry's ingest carried trace context, the feed is recorded as a
// child span in the caller's trace.
func (sh *shard) feed(e audit.Entry, sc obs.SpanContext, lsn uint64) {
	if sh.panicHook != nil {
		sh.panicHook(&e)
	}
	var span *obs.ActiveSpan
	if sc.IsValid() {
		span = sh.tracer.StartSpan(sc, "feed")
		span.SetAttr("shard", strconv.Itoa(sh.id))
		span.SetAttr("case", e.Case)
		span.SetAttr("task", e.Task)
	}
	start := time.Now()
	v, err := sh.mon.Feed(e)
	sh.metrics.feedLatency.observe(time.Since(start))
	if lsn > 0 {
		// Stored only after Feed returns: an entry that panics mid-feed
		// stays ABOVE the truncation clamp (walSafeLSN), so the WAL
		// keeps it for the next boot's replay — the same recovery
		// contract the supervisor's one-entry drop relies on.
		sh.lastFedLSN.Store(lsn)
	}
	if err != nil {
		// Genuine engine error (not a verdict): count it, log it, and
		// leave the case view untouched — the entry is lost, which the
		// feed-errors counter makes visible.
		sh.metrics.feedErrors.Add(1)
		sh.log.Error("feed failed", "shard", sh.id, "case", e.Case, "err", err,
			"trace_id", traceField(sc))
		span.SetAttr("error", err.Error())
		span.End()
		return
	}
	sh.metrics.countEngine(v.Engine)
	outcome := sh.applyVerdict(&e, v, sc, lsn)

	if span != nil {
		span.SetAttr("outcome", outcome)
		span.End()
	}
}

// applyVerdict folds one verdict into the case view under the view
// lock. It is its own function so the lock is released by defer even
// if something under it panics — the supervisor must never inherit a
// poisoned mutex.
func (sh *shard) applyVerdict(e *audit.Entry, v *core.Verdict, sc obs.SpanContext, lsn uint64) string {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	view, ok := sh.views[e.Case]
	if !ok {
		view = &CaseView{
			Case: e.Case, Shard: sh.id, Outcome: outcomeCompliant,
			Purpose: sh.purposeOf(e.Case),
		}
		sh.views[e.Case] = view
	}
	view.Entries = v.CaseEntries
	view.Updated = e.Time
	view.Configurations = v.Configurations
	if lsn > 0 {
		view.WalLSN = lsn
	}
	if v.Engine != "" {
		view.Engine = v.Engine
	}
	switch {
	case v.OK:
		sh.metrics.verdictsOK.Add(1)
		sh.metrics.countPurposeVerdict(view.Purpose, outcomeCompliant)
	case v.Indeterminate != nil:
		sh.metrics.verdictsIndeterminate.Add(1)
		sh.metrics.countPurposeVerdict(view.Purpose, outcomeIndeterminate)
		if view.Outcome == outcomeCompliant {
			view.Outcome = outcomeIndeterminate
			view.Indeterminate = v.Indeterminate.String()
			view.Explanation = v.Explanation
			sh.warnDeviation("case indeterminate", e.Case, "cause", v.Indeterminate.Cause.String(), sc)
			sh.noteTransition(view, v.Indeterminate.Cause.String())
		}
	case v.Violation != nil:
		sh.metrics.verdictsViolation.Add(1)
		sh.metrics.countPurposeVerdict(view.Purpose, outcomeViolation)
		if view.Outcome == outcomeCompliant {
			view.Outcome = outcomeViolation
			view.Violation = v.Violation.String()
			view.Explanation = v.Explanation
			sh.warnDeviation("case violated", e.Case, "reason", v.Violation.Reason, sc)
			sh.noteTransition(view, v.Violation.Reason)
		}
	}
	return view.Outcome
}

// warnDeviation logs a deviation warning through the token-bucket
// limiter: a poison stream that deviates on every entry gets a bounded
// log rate plus a suppressed=N summary instead of a line per entry.
func (sh *shard) warnDeviation(msg, caseID, k, v string, sc obs.SpanContext) {
	ok, suppressed := sh.warnLim.Allow()
	if !ok {
		return
	}
	args := []any{"shard", sh.id, "case", caseID, k, v, "trace_id", traceField(sc)}
	if suppressed > 0 {
		args = append(args, "suppressed", suppressed)
	}
	sh.log.Warn(msg, args...)
}

// noteTransition records a verdict transition in the flight ring and
// fans it out to GET /v1/watch subscribers. Called under sh.mu, but
// both sinks are non-blocking (ring write / channel try-send).
func (sh *shard) noteTransition(view *CaseView, detail string) {
	sh.flight.Record(sh.id, obs.FlightEvent{
		Kind: obs.FlightVerdict, Case: view.Case,
		Detail: view.Outcome + ": " + detail, N: view.Entries,
	})
	sh.watch.publish(watchEvent{
		Case: view.Case, Purpose: view.Purpose, Outcome: view.Outcome,
		Entries: view.Entries, Shard: sh.id, Detail: detail, Time: time.Now(),
	})
}

// traceField renders the trace id for log correlation; empty when the
// entry was untraced (slog drops nothing, so empty is fine).
func traceField(sc obs.SpanContext) string {
	if !sc.IsValid() {
		return ""
	}
	return sc.TraceID.String()
}

// view returns a copy of one case's view.
func (sh *shard) view(caseID string) (CaseView, bool) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	v, ok := sh.views[caseID]
	if !ok {
		return CaseView{}, false
	}
	return *v, true
}

// viewCount returns the number of cases with live view state.
func (sh *shard) viewCount() int {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.views)
}

// collectViews appends copies of views passing the filter.
func (sh *shard) collectViews(dst []CaseView, accept func(*CaseView) bool) []CaseView {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for _, v := range sh.views {
		if accept == nil || accept(v) {
			dst = append(dst, *v)
		}
	}
	return dst
}

// loadViews seeds the view table from a checkpoint (before the worker
// starts; no locking concerns, but take the lock for form).
func (sh *shard) loadViews(views map[string]*CaseView) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for id, v := range views {
		c := *v
		c.Shard = sh.id
		sh.views[id] = &c
	}
}
