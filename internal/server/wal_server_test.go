package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/encode"
	"repro/internal/wal"
)

// Crash-recovery and supervision tests. The contract under test is the
// tentpole of DESIGN.md §14: an acknowledged entry survives kill -9,
// a restored server reproduces exactly the verdicts of an uninterrupted
// run, corruption refuses to boot instead of guessing, and a panicking
// shard degrades loudly instead of wedging the node.

func walConfig(t *testing.T, shards int) (Config, string) {
	t.Helper()
	dir := t.TempDir()
	return Config{
		Shards:          shards,
		WALDir:          filepath.Join(dir, "wal"),
		WALFsync:        wal.FsyncAlways,
		CheckpointPath:  filepath.Join(dir, "ckpt.json"),
		CheckpointEvery: time.Hour,
	}, dir
}

// TestWALReplayAfterCrash streams half the trail, kills the server
// without any checkpoint, reboots on the same WAL directory with a
// different shard count, streams the rest, and requires verdicts
// identical to an uninterrupted run — every acknowledged entry came
// back from the log alone.
func TestWALReplayAfterCrash(t *testing.T) {
	sc := hospitalScenario(t)
	cfg, dir := walConfig(t, 3)

	cut := sc.Trail.Len() / 2
	head := audit.NewTrail(sc.Trail.Entries()[:cut])
	tail := audit.NewTrail(sc.Trail.Entries()[cut:])

	srv1, ts1 := startServer(t, sc, cfg)
	resp, res := post(t, ts1.URL+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, head))
	if resp.StatusCode != http.StatusAccepted || res.Accepted != cut {
		t.Fatalf("head ingest: %s %+v", resp.Status, res)
	}
	srv1.Crash()
	ts1.Close()

	// No checkpoint was ever written: recovery is pure WAL replay.
	if _, err := os.Stat(filepath.Join(dir, "ckpt.json")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("crash left a checkpoint behind: %v", err)
	}

	cfg2 := cfg
	cfg2.Shards = 7
	srv2, ts2 := startServer(t, sc, cfg2)
	if n := srv2.metrics.walReplayed.Load(); n != int64(cut) {
		t.Errorf("replayed %d records, want %d", n, cut)
	}
	resp, res = post(t, ts2.URL+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, tail))
	if resp.StatusCode != http.StatusAccepted || res.Accepted != tail.Len() {
		t.Fatalf("tail ingest: %s %+v", resp.Status, res)
	}

	want := expectedOutcomes(t, sc, sc.Trail)
	got := getCases(t, ts2.URL+"/v1/cases")
	assertOutcomes(t, got, want)
	for _, v := range got.Cases {
		if n := sc.Trail.ByCase(v.Case).Len(); v.Entries != n {
			t.Errorf("case %s: %d entries after replay+tail, want %d", v.Case, v.Entries, n)
		}
		if v.WalLSN == 0 {
			t.Errorf("case %s: no wal_lsn in view", v.Case)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestWALReplaySkipsCheckpointedPrefix crashes with BOTH a checkpoint
// and a WAL tail on disk: boot must feed exactly the records past each
// case's checkpointed LSN — no double-feeding, no gaps — even into a
// different shard layout.
func TestWALReplaySkipsCheckpointedPrefix(t *testing.T) {
	sc := hospitalScenario(t)
	cfg, _ := walConfig(t, 4)

	cut1 := sc.Trail.Len() / 3
	cut2 := 2 * sc.Trail.Len() / 3
	first := audit.NewTrail(sc.Trail.Entries()[:cut1])
	second := audit.NewTrail(sc.Trail.Entries()[cut1:cut2])
	tail := audit.NewTrail(sc.Trail.Entries()[cut2:])

	srv1, ts1 := startServer(t, sc, cfg)
	if resp, _ := post(t, ts1.URL+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, first)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first ingest: %s", resp.Status)
	}
	// A live checkpoint covers the first third (and may truncate
	// covered segments); the second third lands only in the WAL.
	if err := srv1.checkpointRunning(); err != nil {
		t.Fatalf("live checkpoint: %v", err)
	}
	if resp, _ := post(t, ts1.URL+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, second)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second ingest: %s", resp.Status)
	}
	srv1.Crash()
	ts1.Close()

	cfg2 := cfg
	cfg2.Shards = 9
	srv2, ts2 := startServer(t, sc, cfg2)
	if resp, _ := post(t, ts2.URL+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, tail)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("tail ingest: %s", resp.Status)
	}
	want := expectedOutcomes(t, sc, sc.Trail)
	got := getCases(t, ts2.URL+"/v1/cases")
	assertOutcomes(t, got, want)
	for _, v := range got.Cases {
		if n := sc.Trail.ByCase(v.Case).Len(); v.Entries != n {
			t.Errorf("case %s: %d entries, want %d (double-fed or lost on replay)", v.Case, v.Entries, n)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestWALCorruptionRefusesBoot flips a payload byte inside an interior
// WAL record and requires Start to fail with the artifact-mismatch
// error — booting past silent corruption would fabricate verdicts.
func TestWALCorruptionRefusesBoot(t *testing.T) {
	sc := hospitalScenario(t)
	cfg, _ := walConfig(t, 2)

	srv1, ts1 := startServer(t, sc, cfg)
	if resp, _ := post(t, ts1.URL+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, sc.Trail)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest: %s", resp.Status)
	}
	srv1.Crash()
	ts1.Close()

	segs, err := filepath.Glob(filepath.Join(cfg.WALDir, "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments: %v %v", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Offset 40 is inside the first record's payload (24-byte segment
	// header + 8-byte frame header + a few bytes), far from the torn
	// tail, so the damage is unambiguous corruption — not a crash scar.
	data[40] ^= 0x41
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	srv2 := New(sc.Registry, hospitalChecker(sc), cfg)
	err = srv2.Start()
	if err == nil {
		t.Fatal("Start succeeded on a corrupt WAL")
	}
	if !errors.Is(err, encode.ErrArtifactMismatch) {
		t.Errorf("Start error = %v, want artifact mismatch", err)
	}
}

// TestShardSupervisorRecoversPanic injects a one-shot panic into a
// shard worker mid-trail: the supervisor must restart the worker,
// count the dropped entry, and keep the node serving; a crash-reboot
// then recovers even the dropped entry from the WAL.
func TestShardSupervisorRecoversPanic(t *testing.T) {
	sc := hospitalScenario(t)
	cfg, _ := walConfig(t, 1)

	var fed atomic.Int64
	srv1 := New(sc.Registry, hospitalChecker(sc), cfg)
	srv1.shards[0].panicHook = func(e *audit.Entry) {
		if fed.Add(1) == 5 {
			panic("injected shard panic")
		}
	}
	if err := srv1.Start(); err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())

	resp, res := post(t, ts1.URL+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, sc.Trail))
	if resp.StatusCode != http.StatusAccepted || res.Accepted != sc.Trail.Len() {
		t.Fatalf("ingest across panic: %s %+v", resp.Status, res)
	}
	if n := srv1.metrics.shardPanics.Load(); n != 1 {
		t.Errorf("shardPanics = %d, want 1", n)
	}
	if n := srv1.metrics.entriesDropped.Load(); n != 1 {
		t.Errorf("entriesDropped = %d, want 1", n)
	}
	if n := srv1.metrics.shardsFailed.Load(); n != 0 {
		t.Errorf("shardsFailed = %d, want 0 (restart budget not exhausted)", n)
	}
	// Still ready — restarts are reported, not degrading.
	code, body := getBody(t, ts1.URL+"/readyz")
	if code != http.StatusOK {
		t.Fatalf("readyz after recovered panic = %d %s", code, body)
	}
	var rs readyStatus
	if err := json.Unmarshal([]byte(body), &rs); err != nil {
		t.Fatal(err)
	}
	if rs.Status != "ready" || rs.ShardRestarts != 1 {
		t.Errorf("readyz = %+v, want ready with 1 restart", rs)
	}

	// The dropped entry was acknowledged, so it is in the WAL: a
	// crash-reboot without the fault must reach the exact offline
	// verdicts.
	srv1.Crash()
	ts1.Close()
	srv2, ts2 := startServer(t, sc, cfg)
	assertOutcomes(t, getCases(t, ts2.URL+"/v1/cases"), expectedOutcomes(t, sc, sc.Trail))

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestShardFailsAfterRestartBudget wedges one shard with a persistent
// panic: past the restart budget the shard must fail loudly (metric,
// degraded readyz with the shard id, honest 429s for its cases) while
// the other shards keep working.
func TestShardFailsAfterRestartBudget(t *testing.T) {
	sc := hospitalScenario(t)

	srv := New(sc.Registry, hospitalChecker(sc), Config{Shards: 2, ShardRestartLimit: 2})
	bad := srv.shardFor(sc.Trail.Cases()[0])
	bad.panicHook = func(e *audit.Entry) { panic("persistent shard fault") }
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Stream the whole trail; entries routed to the bad shard burn its
	// restart budget, everything else proceeds.
	post(t, ts.URL+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, sc.Trail))
	deadline := time.Now().Add(5 * time.Second)
	for srv.metrics.shardsFailed.Load() == 0 && time.Now().Before(deadline) {
		post(t, ts.URL+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, sc.Trail))
	}
	if n := srv.metrics.shardsFailed.Load(); n != 1 {
		t.Fatalf("shardsFailed = %d, want 1", n)
	}
	if n := bad.restarts.Load(); n < 2 {
		t.Errorf("restarts = %d, want >= 2", n)
	}

	code, body := getBody(t, ts.URL+"/readyz")
	var rs readyStatus
	if err := json.Unmarshal([]byte(body), &rs); err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK || rs.Status != "degraded" {
		t.Errorf("readyz with failed shard = %d %+v, want 200 degraded", code, rs)
	}
	if len(rs.FailedShards) != 1 || rs.FailedShards[0] != bad.id {
		t.Errorf("failed_shards = %v, want [%d]", rs.FailedShards, bad.id)
	}

	// A failed shard refuses its cases with backpressure semantics: the
	// resume contract stays intact for a client that can retry against
	// a recovered replica.
	one := audit.NewTrail(sc.Trail.ByCase(sc.Trail.Cases()[0]).Entries()[:1])
	resp, res := post(t, ts.URL+"/v1/events", "application/x-ndjson", ndjson(t, one))
	if resp.StatusCode != http.StatusTooManyRequests || res.RejectedAtLine != 1 {
		t.Errorf("ingest into failed shard: %s %+v, want 429 rejected at line 1", resp.Status, res)
	}
}

// TestFailedShardCheckpointPreservesWAL fails one shard while
// acknowledged batches still sit in its queue — the drainer drops them
// on the premise they stay in the WAL — then runs both truncation
// paths (a live checkpoint and a clean Shutdown). Neither may remove
// the dropped records: a reboot must recover every acknowledged entry
// and reach the exact uninterrupted verdicts.
func TestFailedShardCheckpointPreservesWAL(t *testing.T) {
	sc := hospitalScenario(t)
	cfg, _ := walConfig(t, 2)
	cfg.ShardRestartLimit = 1
	cfg.WALSegmentBytes = 512 // many sealed segments: truncation has teeth

	srv1 := New(sc.Registry, hospitalChecker(sc), cfg)
	cases := sc.Trail.Cases()
	bad := srv1.shardFor(cases[0])
	var badEntries []audit.Entry
	var healthy bytes.Buffer
	nHealthy := 0
	for _, id := range cases {
		sub := sc.Trail.ByCase(id)
		if srv1.shardFor(id) == bad {
			badEntries = append(badEntries, sub.Entries()...)
		} else {
			if err := audit.WriteJSONL(&healthy, sub); err != nil {
				t.Fatal(err)
			}
			nHealthy += sub.Len()
		}
	}
	if nHealthy == 0 || len(badEntries) < 3 {
		t.Skip("case hashing left a shard too empty for this scenario")
	}

	var armed atomic.Bool
	release := make(chan struct{})
	bad.panicHook = func(e *audit.Entry) {
		if armed.Load() {
			<-release // holds the worker so every batch enqueues first
			panic("persistent shard fault")
		}
	}
	if err := srv1.Start(); err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())

	// One clean feed first, so the truncation clamp is a real LSN.
	first := audit.NewTrail(badEntries[:1])
	if resp, _ := post(t, ts1.URL+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, first)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first ingest: %s", resp.Status)
	}
	// The rest of the shard's entries are acknowledged while the worker
	// is held at its first feed, then the fault burns the restart
	// budget and the drainer discards everything still queued.
	armed.Store(true)
	rest := audit.NewTrail(badEntries[1:])
	resp, res := post(t, ts1.URL+"/v1/events", "application/x-ndjson", ndjson(t, rest))
	if resp.StatusCode != http.StatusAccepted || res.Accepted != rest.Len() {
		t.Fatalf("bad-shard ingest: %s %+v", resp.Status, res)
	}
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for !bad.failed.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !bad.failed.Load() {
		t.Fatal("shard never failed")
	}
	if n := srv1.metrics.entriesDropped.Load(); n == 0 {
		t.Fatal("drainer dropped nothing; scenario broken")
	}

	// Healthy traffic after the failure pushes the WAL high-water mark
	// (and segment seals) far past the dropped records.
	if resp, _ := post(t, ts1.URL+"/v1/events?wait=1", "application/x-ndjson", healthy.Bytes()); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("healthy ingest: %s", resp.Status)
	}
	if err := srv1.checkpointRunning(); err != nil {
		t.Fatalf("checkpoint with failed shard: %v", err)
	}

	// Clean shutdown (closeWAL's truncation path), then reboot without
	// the fault: the log must still hold everything the shard dropped.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	srv2, ts2 := startServer(t, sc, cfg)
	// Everything the failed shard lost comes back from the log: all its
	// records except the one entry fed before the fault was armed.
	if n := srv2.metrics.walReplayed.Load(); n != int64(len(badEntries)-1) {
		t.Errorf("replayed %d records, want %d", n, len(badEntries)-1)
	}
	want := expectedOutcomes(t, sc, sc.Trail)
	got := getCases(t, ts2.URL+"/v1/cases")
	assertOutcomes(t, got, want)
	for _, v := range got.Cases {
		if n := sc.Trail.ByCase(v.Case).Len(); v.Entries != n {
			t.Errorf("case %s: %d entries after reboot, want %d (dropped records truncated?)", v.Case, v.Entries, n)
		}
	}
	ts2.Close()
	srv2.Crash()
}

// TestCheckpointSurvivesDumpPanic panics a shard's dump mid-checkpoint:
// the checkpoint round must fail loudly (never wedge the loop waiting
// on a reply that isn't coming, never persist a cut missing the
// shard's cases), and the next round must succeed once the supervisor
// has restarted the worker.
func TestCheckpointSurvivesDumpPanic(t *testing.T) {
	sc := hospitalScenario(t)
	cfg, _ := walConfig(t, 2)

	srv := New(sc.Registry, hospitalChecker(sc), cfg)
	var faulted atomic.Bool
	srv.shards[0].snapHook = func() {
		if faulted.CompareAndSwap(false, true) {
			panic("injected dump panic")
		}
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if resp, _ := post(t, ts.URL+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, sc.Trail)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest: %s", resp.Status)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.checkpointRunning() }()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("checkpoint succeeded despite a panicked dump")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("checkpoint wedged waiting for a panicked dump")
	}
	// The worker was restarted, not wedged: the next round succeeds.
	if err := srv.checkpointRunning(); err != nil {
		t.Fatalf("checkpoint after restart: %v", err)
	}
	if n := srv.metrics.shardPanics.Load(); n != 1 {
		t.Errorf("shardPanics = %d, want 1", n)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestWALFailstopWedgesIngest breaks the log under the default
// fail-stop policy (segment rotation into a deleted directory) and
// requires the whole ingest surface to wedge with 503s and readiness
// to fail — the node must be pulled, not trusted to acknowledge into
// a black hole.
func TestWALFailstopWedgesIngest(t *testing.T) {
	sc := hospitalScenario(t)
	cfg, _ := walConfig(t, 2)
	cfg.WALSegmentBytes = 512 // rotate every few records

	srv, ts := startServer(t, sc, cfg)
	if resp, _ := post(t, ts.URL+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, sc.Trail)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("priming ingest: %s", resp.Status)
	}
	if err := os.RemoveAll(cfg.WALDir); err != nil {
		t.Fatal(err)
	}

	// The open segment's fd still works, so the failure lands on the
	// next rotation — retry until the append path hits it.
	broke := false
	for i := 0; i < 10 && !broke; i++ {
		resp, _ := post(t, ts.URL+"/v1/events", "application/x-ndjson", ndjson(t, sc.Trail))
		broke = resp.StatusCode == http.StatusServiceUnavailable
	}
	if !broke {
		t.Fatal("WAL failure never surfaced as 503")
	}
	if !srv.walRefusing() {
		t.Error("fail-stop did not wedge the ingest gate")
	}
	if n := srv.metrics.walAppendErrors.Load(); n == 0 {
		t.Error("walAppendErrors did not move")
	}

	// Everything is refused now, before any body processing.
	resp, res := post(t, ts.URL+"/v1/events", "application/x-ndjson", []byte("{}\n"))
	if resp.StatusCode != http.StatusServiceUnavailable || res.Error == "" {
		t.Errorf("post-wedge ingest = %s %+v, want 503 with error", resp.Status, res)
	}
	if code, _ := getBody(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readyz under fail-stop = %d, want 503", code)
	}
	// Queries still answer — only ingest is wedged.
	if code, _ := getBody(t, ts.URL+"/v1/cases"); code != http.StatusOK {
		t.Errorf("queries wedged too: /v1/cases = %d", code)
	}
}

// TestWALShedKeepsServing breaks the log under the shed policy: each
// affected request gets a 503 with its resume line, but the node stays
// ready (degraded) and keeps serving queries.
func TestWALShedKeepsServing(t *testing.T) {
	sc := hospitalScenario(t)
	cfg, _ := walConfig(t, 2)
	cfg.WALSegmentBytes = 512
	cfg.WALFailure = WALShed

	srv, ts := startServer(t, sc, cfg)
	if resp, _ := post(t, ts.URL+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, sc.Trail)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("priming ingest: %s", resp.Status)
	}
	if err := os.RemoveAll(cfg.WALDir); err != nil {
		t.Fatal(err)
	}

	var res ingestResult
	broke := false
	for i := 0; i < 10 && !broke; i++ {
		var resp *http.Response
		resp, res = post(t, ts.URL+"/v1/events", "application/x-ndjson", ndjson(t, sc.Trail))
		broke = resp.StatusCode == http.StatusServiceUnavailable
	}
	if !broke {
		t.Fatal("WAL failure never surfaced as 503")
	}
	if res.RejectedAtLine == 0 {
		t.Errorf("shed 503 without resume line: %+v", res)
	}
	if srv.walRefusing() {
		t.Error("shed policy wedged the ingest gate")
	}

	code, body := getBody(t, ts.URL+"/readyz")
	var rs readyStatus
	if err := json.Unmarshal([]byte(body), &rs); err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK || rs.Status != "degraded" || rs.WAL != "failed" {
		t.Errorf("readyz under shed = %d %+v, want 200 degraded with failed WAL", code, rs)
	}
	if code, _ := getBody(t, ts.URL+"/v1/cases"); code != http.StatusOK {
		t.Errorf("queries wedged: /v1/cases = %d", code)
	}
}

// TestDrainDeadlinePartialCheckpoint sticks one shard's worker and
// shuts down with a deadline: Shutdown must return the deadline error,
// name the straggler, and still write a checkpoint covering the
// drained shard — whose cases then restore.
func TestDrainDeadlinePartialCheckpoint(t *testing.T) {
	sc := hospitalScenario(t)
	dir := t.TempDir()
	cfg := Config{
		Shards:          2,
		CheckpointPath:  filepath.Join(dir, "ckpt.json"),
		CheckpointEvery: time.Hour,
	}

	cases := sc.Trail.Cases()
	stuckCase := cases[0]
	srv := New(sc.Registry, hospitalChecker(sc), cfg)
	stuckShard := srv.shardFor(stuckCase)
	block := make(chan struct{})
	stuckShard.panicHook = func(e *audit.Entry) { <-block }
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer close(block)

	// Healthy cases first, with a barrier (the stuck shard is still
	// idle, so the barrier passes); then one entry to wedge the stuck
	// shard — posted without wait, since it never feeds.
	var healthy bytes.Buffer
	fedHealthy := 0
	for _, id := range cases {
		if srv.shardFor(id) != stuckShard {
			sub := sc.Trail.ByCase(id)
			if err := audit.WriteJSONL(&healthy, sub); err != nil {
				t.Fatal(err)
			}
			fedHealthy += sub.Len()
		}
	}
	if fedHealthy == 0 {
		t.Skip("every case hashed to the stuck shard")
	}
	if resp, _ := post(t, ts.URL+"/v1/events?wait=1", "application/x-ndjson", healthy.Bytes()); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("healthy ingest: %s", resp.Status)
	}
	one := audit.NewTrail(sc.Trail.ByCase(stuckCase).Entries()[:1])
	if resp, _ := post(t, ts.URL+"/v1/events", "application/x-ndjson", ndjson(t, one)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("stuck-shard ingest: %s", resp.Status)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	err := srv.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}

	// The partial checkpoint restores the drained shard's cases.
	srv2, ts2 := startServer(t, sc, cfg)
	got := getCases(t, ts2.URL+"/v1/cases")
	seen := map[string]int{}
	for _, v := range got.Cases {
		seen[v.Case] = v.Entries
	}
	for _, id := range cases {
		if srv.shardFor(id) == stuckShard {
			continue
		}
		if n := sc.Trail.ByCase(id).Len(); seen[id] != n {
			t.Errorf("case %s: %d entries after partial checkpoint restore, want %d", id, seen[id], n)
		}
	}
	ts2.Close()
	srv2.Crash()
}

// TestRetryAfterOccupancy checks the backpressure hint is derived and
// jittered, not hardcoded: small positive values that vary with load
// rather than a constant "1".
func TestRetryAfterOccupancy(t *testing.T) {
	sc := hospitalScenario(t)
	srv := New(sc.Registry, hospitalChecker(sc), Config{Shards: 1, QueueDepth: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, _ := post(t, ts.URL+"/v1/events", "application/x-ndjson", ndjson(t, sc.Trail))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated ingest: %s, want 429", resp.Status)
	}
	ra := resp.Header.Get("Retry-After")
	sec, err := strconv.Atoi(ra)
	if err != nil || sec < 1 || sec > 10 {
		t.Errorf("Retry-After = %q, want integer seconds in [1,10]", ra)
	}
	// The saturated queue (occupancy 1.0) must push the hint above the
	// old constant floor at least sometimes across draws.
	max := 0
	for i := 0; i < 32; i++ {
		if v := srv.retryAfterSeconds(false); v > max {
			max = v
		}
	}
	if max < 4 {
		t.Errorf("retryAfterSeconds never exceeded %d under full occupancy", max)
	}
}
