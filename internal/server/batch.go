package server

import (
	"sync"

	"repro/internal/audit"
	"repro/internal/obs"
)

// Batched dispatch. The ingest loop used to pay one channel send (and
// one shard wake-up) per entry; real trails are runs of same-case
// entries, and same case means same shard, so consecutive entries are
// grouped into pooled batch slices and each run crosses the queue as
// one message. Batching changes dispatch cost only — ordering, the
// QueueDepth bound (in entries, via shard credits) and the
// RejectedAtLine resume contract are all preserved exactly.

// maxBatch caps one dispatch batch. Large enough to amortize the
// channel op into noise, small enough that a batch in flight doesn't
// add noticeable latency before a barrier.
const maxBatch = 256

// batchPool recycles batch slices between producers and shard workers.
var batchPool = sync.Pool{New: func() any {
	b := make([]audit.Entry, 0, maxBatch)
	return &b
}}

func getBatch() *[]audit.Entry { return batchPool.Get().(*[]audit.Entry) }

func putBatch(b *[]audit.Entry) {
	*b = (*b)[:0]
	batchPool.Put(b)
}

// batcher accumulates one ingest stream's consecutive same-shard run
// and flushes it as a single queue message. Not safe for concurrent
// use; each request builds its own.
type batcher struct {
	s  *Server
	sc obs.SpanContext
	// cap bounds one batch: maxBatch, clamped to QueueDepth so a full
	// batch can always fit the shard's credit budget (otherwise small
	// QueueDepth configurations would degrade every flush).
	cap int

	sh  *shard
	buf *[]audit.Entry
	// rec is the pending batch's stage timing record (nil when the
	// sampler skipped it), opened with the batch so the decode stage
	// spans open → flush.
	rec *obs.StageRecord
	// lines holds each pending entry's 1-based body line (lines are not
	// contiguous when quarantined lines interleave), so a degraded
	// flush can report the exact rejected line.
	lines []int

	accepted     int
	rejectedLine int
}

func (s *Server) newBatcher(sc obs.SpanContext) batcher {
	c := maxBatch
	if s.cfg.QueueDepth < c {
		c = s.cfg.QueueDepth
	}
	return batcher{s: s, sc: sc, cap: c}
}

// add routes one entry (at 1-based body line line). false means a
// saturated shard stopped the ingest: accepted holds the entries
// enqueued so far and rejectedLine the line to resend from.
func (b *batcher) add(e audit.Entry, line int) bool {
	sh := b.s.shardFor(e.Case)
	if b.buf != nil && (sh != b.sh || len(*b.buf) >= b.cap) {
		if !b.flush() {
			return false
		}
	}
	if b.buf == nil {
		b.buf = getBatch()
		b.sh = sh
		b.lines = b.lines[:0]
		b.rec = b.s.sampleStages(b.sc)
	}
	*b.buf = append(*b.buf, e)
	b.lines = append(b.lines, line)
	return true
}

// flush dispatches the pending batch, if any. When the shard cannot
// hold the whole batch it degrades to single-entry enqueues, so
// acceptance stops at exactly the first entry the queue has no room
// for — the RejectedAtLine resume contract predates batching and must
// not coarsen to batch granularity.
func (b *batcher) flush() bool {
	if b.buf == nil {
		return true
	}
	buf, lines, rec := b.buf, b.lines, b.rec
	b.buf, b.rec = nil, nil
	n := len(*buf)
	if n == 0 {
		putBatch(buf)
		return true
	}
	rec.MarkDecoded()
	if b.s.enqueueBatch(b.sh, buf, b.sc, rec) {
		b.accepted += n
		b.s.metrics.eventsIngested.Add(int64(n))
		return true
	}
	// Degraded single-entry enqueues drop the timing record: a batch
	// split by saturation is not a representative pipeline sample.
	for i := 0; i < n; i++ {
		single := getBatch()
		*single = append(*single, (*buf)[i])
		if !b.s.enqueueBatch(b.sh, single, b.sc, nil) {
			putBatch(single)
			putBatch(buf)
			b.accepted += i
			if i > 0 {
				b.s.metrics.eventsIngested.Add(int64(i))
			}
			b.s.metrics.eventsRejected.Add(1)
			b.rejectedLine = lines[i]
			return false
		}
	}
	b.accepted += n
	b.s.metrics.eventsIngested.Add(int64(n))
	putBatch(buf)
	return true
}
