package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"mime"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/obs"
)

// HTTP surface:
//
//	POST /v1/events              NDJSON (default) or text/csv entry stream;
//	                             honors a W3C traceparent header
//	GET  /v1/cases               all case verdicts; ?outcome=, ?purpose=, ?since=
//	GET  /v1/cases/{id}          one case
//	GET  /v1/cases/{id}/explain  structured explanation of the first deviation
//	GET  /v1/traces              recent spans from the in-memory ring buffer;
//	                             ?trace_id=, ?case= filters
//	GET  /v1/purposes            registered purposes
//	GET  /v1/quarantine          malformed lines set aside by lenient ingestion
//	GET  /v1/proofs/{id}         verdict + Merkle inclusion proof for one case
//	GET  /v1/roots               signed ledger root chain; ?since=N
//	GET  /v1/status              deep operational state (per-shard queues, WAL,
//	                             ledger, flight recorder) — purposectl top's feed
//	GET  /v1/watch               SSE stream of verdict transitions; ?outcome=
//	GET  /debug/flightrecorder   live flight-recorder event snapshot
//	GET  /metrics                Prometheus text exposition
//	GET  /healthz                process liveness
//	GET  /readyz                 ready to ingest (503 while starting/draining)

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/cases", s.handleCases)
	s.mux.HandleFunc("GET /v1/cases/{id}", s.handleCase)
	s.mux.HandleFunc("GET /v1/cases/{id}/explain", s.handleExplain)
	s.mux.HandleFunc("GET /v1/traces", s.handleTraces)
	s.mux.HandleFunc("GET /v1/purposes", s.handlePurposes)
	s.mux.HandleFunc("GET /v1/quarantine", s.handleQuarantine)
	s.mux.HandleFunc("GET /v1/proofs/{id}", s.handleProof)
	s.mux.HandleFunc("GET /v1/roots", s.handleRoots)
	s.mux.HandleFunc("GET /v1/status", s.handleStatus)
	s.mux.HandleFunc("GET /v1/watch", s.handleWatch)
	s.mux.HandleFunc("GET /debug/flightrecorder", s.handleFlightRecorder)
	s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.writeMetrics(w)
	})
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
}

// readyStatus is the GET /readyz body. Status is "ready", "degraded"
// (serving, but with failed shards or a shed WAL — details attached)
// or "not_ready" (starting, draining, or wedged by WAL fail-stop).
type readyStatus struct {
	Status        string `json:"status"`
	FailedShards  []int  `json:"failed_shards,omitempty"`
	ShardRestarts int64  `json:"shard_restarts,omitempty"`
	WAL           string `json:"wal,omitempty"` // "ok" | "failed" (omitted when no WAL)
}

// handleReadyz reports readiness with supervision detail. Fail-stop
// WAL failure answers 503 (the node must be pulled: it refuses all
// ingest); failed shards or a shed WAL degrade the body but keep 200,
// since the node still serves queries and the surviving shards ingest.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := readyStatus{Status: "ready"}
	var restarts int64
	for _, sh := range s.shards {
		restarts += sh.restarts.Load()
		if sh.failed.Load() {
			st.FailedShards = append(st.FailedShards, sh.id)
		}
	}
	st.ShardRestarts = restarts
	if s.wal != nil {
		st.WAL = "ok"
		if s.walBroken() {
			st.WAL = "failed"
		}
	}
	switch {
	case !s.isReady():
		st.Status = "not_ready"
		writeJSON(w, http.StatusServiceUnavailable, st)
	case s.walRefusing():
		st.Status = "not_ready"
		writeJSON(w, http.StatusServiceUnavailable, st)
	case len(st.FailedShards) > 0 || st.WAL == "failed":
		st.Status = "degraded"
		writeJSON(w, http.StatusOK, st)
	default:
		writeJSON(w, http.StatusOK, st)
	}
}

// retryAfterSeconds derives the Retry-After hint from queue occupancy
// plus jitter, so clients synchronized by a shared saturation event
// don't come back in lockstep. A draining server suggests a longer
// wait (restart plus drain outlasts a quick retry); a saturated one
// scales the hint with its fullest shard — a nearly-drained queue
// invites a fast retry, a packed one backs clients off harder.
func (s *Server) retryAfterSeconds(draining bool) int {
	if draining {
		return 3 + rand.IntN(4) // 3-6s
	}
	var worst float64
	for _, sh := range s.shards {
		if o := float64(sh.pendingEntries()) / float64(sh.depth); o > worst {
			worst = o
		}
	}
	base := 1 + int(worst*3+0.5) // 1..4s with occupancy
	return base + rand.IntN(base+1)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// ingestResult is the POST /v1/events response body.
type ingestResult struct {
	// Accepted entries were enqueued to a shard (not necessarily fed
	// yet unless ?wait=1).
	Accepted int `json:"accepted"`
	// Quarantined lines were malformed and set aside.
	Quarantined int `json:"quarantined"`
	// RejectedAtLine is set on 429: the 1-based body line at which a
	// saturated shard stopped the ingest. Everything before it (minus
	// quarantined lines) was accepted; resend from here.
	RejectedAtLine int    `json:"rejected_at_line,omitempty"`
	Error          string `json:"error,omitempty"`
}

// handleEvents ingests an entry stream. NDJSON bodies are consumed
// line-at-a-time so backpressure stops the read exactly at the
// rejected line; CSV bodies (Content-Type: text/csv) are decoded as a
// batch first (the CSV reader needs the header) and then enqueued with
// the same backpressure contract. Malformed lines land in the
// quarantine in both modes — lenient ingestion, not rejection.
//
// When the request carries a valid W3C traceparent header, the ingest
// is recorded as a span in the caller's trace and every entry's feed
// becomes a child span of it; untraced requests record nothing.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.walRefusing() {
		writeJSON(w, http.StatusServiceUnavailable, ingestResult{
			Error: "write-ahead log failed; ingest disabled (fail-stop)",
		})
		return
	}
	if !s.accepting() {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds(true)))
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	defer s.ingestWG.Done()

	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	wait := r.URL.Query().Get("wait") != ""

	var span *obs.ActiveSpan
	var spanCtx obs.SpanContext
	if tp := r.Header.Get("traceparent"); tp != "" {
		if parent, err := obs.ParseTraceparent(tp); err == nil {
			span = s.tracer.StartSpan(parent, "ingest")
			span.SetAttr("format", ct)
			spanCtx = span.Context()
		}
	}

	var res ingestResult
	var full bool
	if ct == "text/csv" {
		res, full = s.ingestCSV(r, body, spanCtx)
	} else {
		res, full = s.ingestNDJSON(r, body, spanCtx)
	}

	if span != nil {
		span.SetAttr("accepted", strconv.Itoa(res.Accepted))
		span.SetAttr("quarantined", strconv.Itoa(res.Quarantined))
		if full {
			span.SetAttr("backpressure", "true")
		}
		span.End()
	}

	if wait {
		s.Flush()
	}
	switch {
	case full && s.walBroken():
		// The rejection wasn't backpressure: the WAL refused the write.
		// 503 (not 429) with the resume line, so a client can still
		// resend exactly the unaccepted tail elsewhere or later.
		if res.Error == "" {
			res.Error = "write-ahead log append failed"
		}
		writeJSON(w, http.StatusServiceUnavailable, res)
	case full:
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds(false)))
		writeJSON(w, http.StatusTooManyRequests, res)
	case res.Error != "":
		writeJSON(w, http.StatusBadRequest, res)
	default:
		writeJSON(w, http.StatusAccepted, res)
	}
}

// ingestNDJSON consumes one JSON entry per line through the
// zero-allocation scanner, grouping consecutive same-shard runs into
// batched dispatches. The pending batch is flushed whenever the
// scanner is about to block on the socket, so live trickle streams
// keep per-entry latency.
func (s *Server) ingestNDJSON(r *http.Request, body io.Reader, spanCtx obs.SpanContext) (ingestResult, bool) {
	var res ingestResult
	sc := audit.NewEntryScanner(body, audit.DecodeOptions{Lenient: true})
	b := s.newBatcher(spanCtx)
	qseen := 0
	drain := func() {
		recs := sc.Quarantine().Records
		for ; qseen < len(recs); qseen++ {
			rec := recs[qseen]
			s.quarantineLine(r, rec.Line, strings.TrimSpace(rec.Raw), rec.Err)
			res.Quarantined++
		}
	}
	reject := func() (ingestResult, bool) {
		drain()
		res.Accepted = b.accepted
		res.RejectedAtLine = b.rejectedLine
		return res, true
	}
	for sc.Scan() {
		if !b.add(*sc.Entry(), sc.Line()) {
			return reject()
		}
		if !sc.Buffered() && !b.flush() {
			return reject()
		}
	}
	if !b.flush() {
		return reject()
	}
	drain()
	res.Accepted = b.accepted
	if err := sc.Err(); err != nil {
		res.Error = err.Error()
	}
	return res, false
}

// ingestCSV decodes a Figure 4 CSV body leniently, then enqueues
// through the same batcher as NDJSON.
func (s *Server) ingestCSV(r *http.Request, body io.Reader, spanCtx obs.SpanContext) (ingestResult, bool) {
	var res ingestResult
	entries, q, err := audit.DecodeCSVEntries(body, audit.DecodeOptions{Lenient: true})
	if err != nil {
		res.Error = err.Error()
		return res, false
	}
	for _, rec := range q.Records {
		s.quarantineLine(r, rec.Line, rec.Raw, rec.Err)
		res.Quarantined++
	}
	b := s.newBatcher(spanCtx)
	reject := func() (ingestResult, bool) {
		res.Accepted = b.accepted
		res.RejectedAtLine = b.rejectedLine
		return res, true
	}
	for i, e := range entries {
		// +2: CSV data starts at body line 2 (header is line 1).
		if !b.add(e, i+2) {
			return reject()
		}
	}
	if !b.flush() {
		return reject()
	}
	res.Accepted = b.accepted
	return res, false
}

func (s *Server) quarantineLine(r *http.Request, line int, raw string, err error) {
	s.metrics.eventsQuarantined.Add(1)
	s.quar.add(r.RemoteAddr, line, raw, err, time.Now())
	// Rate-limited: a body that's garbage on every line must not turn
	// the log into a copy of the body.
	if ok, suppressed := s.limQuar.Allow(); ok {
		args := []any{"line", line, "err", err, "remote", r.RemoteAddr}
		if suppressed > 0 {
			args = append(args, "suppressed", suppressed)
		}
		s.log.Warn("line quarantined", args...)
	}
}

// handleCases lists case verdicts, optionally filtered by ?outcome=
// (compliant|violation|indeterminate), ?purpose=, and ?since= (cases
// whose verdict state changed at or after the given time, paper layout
// or RFC 3339 — for incremental polling).
func (s *Server) handleCases(w http.ResponseWriter, r *http.Request) {
	outcome := r.URL.Query().Get("outcome")
	purpose := r.URL.Query().Get("purpose")
	var since time.Time
	if v := r.URL.Query().Get("since"); v != "" {
		t, err := cli.ParseTime(v)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		since = t
	}
	accept := func(v *CaseView) bool {
		if outcome != "" && v.Outcome != outcome {
			return false
		}
		if purpose != "" && v.Purpose != purpose {
			return false
		}
		if !since.IsZero() && v.Updated.Before(since) {
			return false
		}
		return true
	}
	var views []CaseView
	for _, sh := range s.shards {
		views = sh.collectViews(views, accept)
	}
	sort.Slice(views, func(i, j int) bool { return views[i].Case < views[j].Case })
	writeJSON(w, http.StatusOK, struct {
		Cases []CaseView `json:"cases"`
		Total int        `json:"total"`
	}{Cases: views, Total: len(views)})
}

func (s *Server) handleCase(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, ok := s.shardFor(id).view(id)
	if !ok {
		http.Error(w, fmt.Sprintf("case %q not monitored", id), http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// handleExplain returns the structured account of a case's first
// deviation. Compliant cases answer with a null explanation — the case
// exists but there is nothing to explain yet.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, ok := s.shardFor(id).view(id)
	if !ok {
		http.Error(w, fmt.Sprintf("case %q not monitored", id), http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Case        string            `json:"case"`
		Outcome     string            `json:"outcome"`
		Explanation *core.Explanation `json:"explanation"`
	}{Case: v.Case, Outcome: v.Outcome, Explanation: v.Explanation})
}

// handleTraces dumps the span ring, oldest-first. ?trace_id= narrows
// to one trace; ?case= to spans tagged with that case (feed spans).
// Held/Total/Dropped always describe the whole ring, so a filtered
// read still shows whether eviction may have eaten matching spans.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	traceID := r.URL.Query().Get("trace_id")
	caseID := r.URL.Query().Get("case")
	spans := s.ring.Snapshot()
	if traceID != "" || caseID != "" {
		filtered := make([]obs.Span, 0, len(spans))
		for _, sp := range spans {
			if traceID != "" && sp.TraceID.String() != traceID {
				continue
			}
			if caseID != "" && sp.Attrs["case"] != caseID {
				continue
			}
			filtered = append(filtered, sp)
		}
		spans = filtered
	}
	held, total := s.ring.Stats()
	writeJSON(w, http.StatusOK, struct {
		Held    int        `json:"held"`
		Total   uint64     `json:"total"`
		Dropped uint64     `json:"dropped"`
		Spans   []obs.Span `json:"spans"`
	}{Held: held, Total: total, Dropped: s.ring.Dropped(), Spans: spans})
}

// purposeInfo is one row of GET /v1/purposes.
type purposeInfo struct {
	Name  string   `json:"name"`
	Codes []string `json:"codes"`
	Tasks int      `json:"tasks"`
	Cases int      `json:"cases"`
}

func (s *Server) handlePurposes(w http.ResponseWriter, r *http.Request) {
	perPurpose := map[string]int{}
	var all []CaseView
	for _, sh := range s.shards {
		all = sh.collectViews(all, nil)
	}
	for _, v := range all {
		perPurpose[v.Purpose]++
	}
	var out []purposeInfo
	for _, name := range s.reg.Purposes() {
		p := s.reg.Purpose(name)
		out = append(out, purposeInfo{
			Name:  name,
			Codes: p.Codes,
			Tasks: len(p.Process.Tasks()),
			Cases: perPurpose[name],
		})
	}
	writeJSON(w, http.StatusOK, struct {
		Purposes []purposeInfo `json:"purposes"`
	}{Purposes: out})
}

func (s *Server) handleQuarantine(w http.ResponseWriter, r *http.Request) {
	held, total := s.quar.stats()
	writeJSON(w, http.StatusOK, struct {
		Total   int64              `json:"total"`
		Held    int                `json:"held"`
		Records []QuarantineRecord `json:"records"`
	}{Total: total, Held: held, Records: s.quar.snapshot()})
}
