package server

import (
	"net/http"
	"runtime"
	"time"

	"repro/internal/cli"
	"repro/internal/obs"
)

// GET /v1/status: the deep operational view — everything purposectl
// top renders in one JSON document. Where /readyz answers "should the
// load balancer keep me?", /v1/status answers "what is every shard
// doing right now?". All fields are reads of atomics or short
// RLock'd copies; a status poll never touches the ingest hot path.

// shardStatus is one shard's row in /v1/status.
type shardStatus struct {
	ID      int   `json:"id"`
	Pending int64 `json:"pending"` // entries accepted but not yet fed
	Depth   int64 `json:"depth"`
	// HighWater is the worst queue occupancy seen since boot.
	HighWater int64 `json:"high_water"`
	Cases     int   `json:"cases"`
	Restarts  int64 `json:"restarts,omitempty"`
	Failed    bool  `json:"failed,omitempty"`
	// LastFedLSN is the WAL LSN of the last completed feed (0 without
	// a WAL).
	LastFedLSN uint64 `json:"last_fed_lsn,omitempty"`
}

type walStatus struct {
	Records  uint64 `json:"records"`
	LastLSN  uint64 `json:"last_lsn"`
	Fsyncs   uint64 `json:"fsyncs"`
	Segments int    `json:"segments"`
	Bytes    int64  `json:"bytes"`
	Failed   bool   `json:"failed,omitempty"`
}

type ledgerStatus struct {
	HeadSeq      int    `json:"head_seq"`
	SealedLeaves uint64 `json:"sealed_leaves"`
	OpenLeaves   int    `json:"open_leaves"`
	SealedLSN    uint64 `json:"sealed_lsn"`
}

type flightStatus struct {
	EventsHeld int    `json:"events_held"`
	Total      uint64 `json:"total"`
	Dumps      int64  `json:"dumps"`
	LastDump   string `json:"last_dump,omitempty"`
}

type verdictTotals struct {
	Compliant     int64 `json:"compliant"`
	Violation     int64 `json:"violation"`
	Indeterminate int64 `json:"indeterminate"`
}

// statusReply is the GET /v1/status body.
type statusReply struct {
	Version             string  `json:"version"`
	GoVersion           string  `json:"go_version"`
	CompilerFingerprint string  `json:"compiler_fingerprint"`
	UptimeSeconds       float64 `json:"uptime_seconds"`
	Ready               bool    `json:"ready"`

	Cases    int `json:"cases"`
	Purposes int `json:"purposes"`

	Ingested    int64         `json:"ingested"`
	Rejected    int64         `json:"rejected"`
	Quarantined int64         `json:"quarantined"`
	Dropped     int64         `json:"dropped"`
	Verdicts    verdictTotals `json:"verdicts"`

	Shards []shardStatus `json:"shards"`

	WAL    *walStatus    `json:"wal,omitempty"`
	Ledger *ledgerStatus `json:"ledger,omitempty"`

	// StageSampleEvery is the configured 1-in-N stage sampling (0 =
	// off; traced requests are always timed).
	StageSampleEvery int          `json:"stage_sample_every"`
	Watchers         int          `json:"watchers"`
	Flight           flightStatus `json:"flight"`

	// Snapshots/SnapshotAgeSeconds describe checkpointing activity
	// (absent age means no snapshot yet).
	Snapshots          int64   `json:"snapshots,omitempty"`
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds,omitempty"`
}

func (s *Server) statusReply() statusReply {
	m := s.metrics
	st := statusReply{
		Version:             cli.Version,
		GoVersion:           runtime.Version(),
		CompilerFingerprint: cli.CompilerFingerprint(),
		UptimeSeconds:       time.Since(s.startTime).Seconds(),
		Ready:               s.isReady() && !s.walRefusing(),
		Cases:               s.caseCount(),
		Purposes:            len(s.reg.Purposes()),
		Ingested:            m.eventsIngested.Load(),
		Rejected:            m.eventsRejected.Load(),
		Quarantined:         m.eventsQuarantined.Load(),
		Dropped:             m.entriesDropped.Load(),
		Verdicts: verdictTotals{
			Compliant:     m.verdictsOK.Load(),
			Violation:     m.verdictsViolation.Load(),
			Indeterminate: m.verdictsIndeterminate.Load(),
		},
		StageSampleEvery: s.stages.Every(),
		Watchers:         s.watch.count(),
		Snapshots:        m.snapshots.Load(),
	}
	for _, sh := range s.shards {
		st.Shards = append(st.Shards, shardStatus{
			ID:         sh.id,
			Pending:    sh.pendingEntries(),
			Depth:      sh.depth,
			HighWater:  sh.highWater.Load(),
			Cases:      sh.viewCount(),
			Restarts:   sh.restarts.Load(),
			Failed:     sh.failed.Load(),
			LastFedLSN: sh.lastFedLSN.Load(),
		})
	}
	if s.wal != nil {
		appended, syncs, segments, bytes := s.wal.Stats()
		st.WAL = &walStatus{
			Records: appended, LastLSN: s.wal.LastLSN(), Fsyncs: syncs,
			Segments: segments, Bytes: bytes, Failed: s.walBroken(),
		}
	}
	if s.ledger != nil {
		batches, leaves, open, _ := s.ledger.Stats()
		st.Ledger = &ledgerStatus{
			HeadSeq: batches, SealedLeaves: leaves, OpenLeaves: open,
			SealedLSN: s.ledger.LastSealedLSN(),
		}
	}
	held, total, dumps := s.flight.Stats()
	st.Flight = flightStatus{EventsHeld: held, Total: total, Dumps: dumps, LastDump: s.flight.LastDump()}
	if last := m.lastSnapshotNano.Load(); last > 0 {
		st.SnapshotAgeSeconds = time.Since(time.Unix(0, last)).Seconds()
	}
	return st
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statusReply())
}

// handleFlightRecorder serves the live flight-recorder snapshot — the
// same merged, seq-ordered event view a dump file would contain, plus
// dump bookkeeping.
func (s *Server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	held, total, dumps := s.flight.Stats()
	writeJSON(w, http.StatusOK, struct {
		Held     int               `json:"held"`
		Total    uint64            `json:"total"`
		Dumps    int64             `json:"dumps"`
		LastDump string            `json:"last_dump,omitempty"`
		Events   []obs.FlightEvent `json:"events"`
	}{Held: held, Total: total, Dumps: dumps, LastDump: s.flight.LastDump(), Events: s.flight.Snapshot()})
}
