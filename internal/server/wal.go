package server

// Durable dispatch: the glue between the ingest path and internal/wal
// (DESIGN.md §14). With a WAL configured, acceptance means durability:
// a batch's credits are reserved first (so the 429 decision happens
// before any disk write), the batch is appended to the log, and only
// then is it enqueued to its shard — a blocking send, which cannot
// stall indefinitely because credits bound queued entries to the
// channel capacity and the supervisor keeps even a failed shard's
// queue draining.
//
// Replay correctness rests on two invariants kept here:
//
//  1. Per shard, WAL record order equals feed order (sh.enqMu makes
//     append+send atomic per shard; cases never span shards).
//  2. Each case view carries the LSN of its last fed entry, persisted
//     in checkpoints, so boot replay skips exactly the records the
//     restored checkpoint already covers — robust against segment
//     truncation and shard-count changes.
//
// Truncation safety: a checkpoint may only drop records that are
// certain to be inside its cut. Records enqueued before the dump
// requests are fed before the dumps (FIFO queues); the only records
// that might not be are those inside an append→enqueue window, which
// the inflight tracker exposes as a low-water mark captured before the
// dump fan-out.

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/audit"
	"repro/internal/obs"
	"repro/internal/wal"
)

// inflightTracker records the first LSN of every batch that has been
// appended to the WAL but not yet enqueued to its shard. Its mutex
// also brackets the append itself, so lowWater never misses a window
// that completed its append before the capture.
type inflightTracker struct {
	mu     sync.Mutex
	firsts map[uint64]int // first LSN → open windows with that first
}

// openWAL opens the configured log; no-op without WALDir.
func (s *Server) openWAL() error {
	if s.cfg.WALDir == "" {
		return nil
	}
	switch s.cfg.WALFailure {
	case WALFailstop, WALShed:
	default:
		return fmt.Errorf("server: unknown WAL failure policy %q (want %s|%s)",
			s.cfg.WALFailure, WALFailstop, WALShed)
	}
	l, err := wal.Open(s.cfg.WALDir, wal.Options{
		SegmentBytes:  s.cfg.WALSegmentBytes,
		Fsync:         s.cfg.WALFsync,
		FsyncInterval: s.cfg.WALFsyncInterval,
	})
	if err != nil {
		return fmt.Errorf("server: opening wal: %w", err)
	}
	s.wal = l
	s.inflight.firsts = map[uint64]int{}
	return nil
}

// replayWAL re-feeds the log tail through the shards — records past
// each case's checkpointed LSN, in log order, before the workers
// start. Corruption aborts boot.
func (s *Server) replayWAL() error {
	if s.wal == nil {
		return nil
	}
	skip := map[string]uint64{}
	for _, sh := range s.shards {
		sh.mu.RLock()
		for id, v := range sh.views {
			if v.WalLSN > 0 {
				skip[id] = v.WalLSN
			}
		}
		sh.mu.RUnlock()
	}
	start := time.Now()
	replayed := 0
	// The ledger rebuilds from the same pass: every record past its
	// checkpointed sealed boundary becomes a leaf again, in LSN order,
	// regrowing the open tail (and any unpersisted batches) exactly as
	// the pre-crash run sealed them.
	ledgerFrom := uint64(0)
	if s.ledger != nil {
		ledgerFrom = s.ledger.LastLSN()
	}
	var one [1]audit.Entry
	err := s.wal.Replay(1, func(lsn uint64, e audit.Entry) error {
		if s.ledger != nil && lsn > ledgerFrom {
			one[0] = e
			if err := s.ledger.Append(one[:], lsn); err != nil {
				return fmt.Errorf("rebuilding ledger: %w", err)
			}
		}
		if lsn <= skip[e.Case] {
			return nil // already inside the restored checkpoint's cut
		}
		s.shardFor(e.Case).feed(e, obs.SpanContext{}, lsn)
		replayed++
		return nil
	})
	if err != nil {
		return fmt.Errorf("server: wal replay: %w", err)
	}
	if replayed > 0 || s.wal.LastLSN() > 0 {
		s.metrics.walReplayed.Add(int64(replayed))
		s.log.Info("wal replayed", "records", replayed, "last_lsn", s.wal.LastLSN(),
			"dur_ms", float64(time.Since(start).Microseconds())/1000)
	}
	return nil
}

// enqueueBatch dispatches one pooled batch to sh — directly when no
// WAL is configured, through it otherwise. false means the batch was
// not accepted (saturation, failed shard, or WAL failure) and the
// caller still owns the slice. rec is the batch's stage timing record
// (nil when unsampled): the WAL path splits the append into
// wal_append / wal_fsync / ledger_seal before stamping the enqueue.
func (s *Server) enqueueBatch(sh *shard, b *[]audit.Entry, sc obs.SpanContext, rec *obs.StageRecord) bool {
	if s.wal == nil {
		return sh.tryEnqueueBatch(b, sc, rec)
	}
	if s.walFailed.Load() {
		return false
	}
	n := int64(len(*b))
	if !sh.reserve(n) {
		return false
	}
	sh.enqMu.Lock()
	var appendStart time.Time
	if rec != nil {
		appendStart = time.Now()
	}
	first, err := s.walAppend(*b, rec)
	if err != nil {
		sh.enqMu.Unlock()
		sh.credits.Add(n)
		s.walFailure(err)
		return false
	}
	if rec != nil {
		// The append wall-clock minus its inline fsync (zero unless the
		// policy is always; appends are serialized under inflight.mu, so
		// the read-back is this append's) and minus the ledger seal,
		// already attributed inside walAppend.
		total := time.Since(appendStart)
		fsync := s.wal.AppendSyncWait()
		rec.Add(obs.StageWALFsync, fsync)
		rec.Add(obs.StageWALAppend, total-fsync-rec.Dur(obs.StageLedgerSeal))
		rec.MarkEnqueued()
	}
	// Blocking send: the credits just reserved guarantee a queue slot
	// frees up, and the worker (or its supervisor/drainer) is always
	// consuming.
	sh.queue <- shardMsg{batch: b, sc: sc, firstLSN: first, stages: rec}
	sh.enqMu.Unlock()
	sh.noteHighWater()
	s.inflightDone(first)
	return true
}

// walAppend appends one batch and registers its append→enqueue window,
// atomically with respect to lowWater captures. The ledger seals here
// too: inflight.mu globally serializes WAL appends, so feeding the
// ledger under it hands leaves over in exact LSN order — the invariant
// that makes crash rebuilds sign the same trees as the original run.
func (s *Server) walAppend(entries []audit.Entry, rec *obs.StageRecord) (uint64, error) {
	s.inflight.mu.Lock()
	defer s.inflight.mu.Unlock()
	first, _, err := s.wal.Append(entries)
	if err != nil {
		s.flight.Record(-1, obs.FlightEvent{Kind: obs.FlightWALError, Detail: err.Error(), N: len(entries)})
		return 0, err
	}
	if s.ledger != nil {
		var sealStart time.Time
		if rec != nil {
			sealStart = time.Now()
		}
		if err := s.ledger.Append(entries, first); err != nil {
			// The entries are durable but unsealed; refuse the batch so
			// the acknowledged ⇒ provable contract holds (replay re-seals
			// them at next boot).
			s.flight.Record(-1, obs.FlightEvent{Kind: obs.FlightLedgerErr, Detail: err.Error(), LSN: first})
			return 0, fmt.Errorf("ledger append: %w", err)
		}
		if rec != nil {
			rec.Add(obs.StageLedgerSeal, time.Since(sealStart))
		}
	}
	s.inflight.firsts[first]++
	return first, nil
}

// inflightDone closes an append→enqueue window: the batch is in its
// shard queue, so any dump requested from now on will reflect it.
func (s *Server) inflightDone(first uint64) {
	s.inflight.mu.Lock()
	if s.inflight.firsts[first]--; s.inflight.firsts[first] <= 0 {
		delete(s.inflight.firsts, first)
	}
	s.inflight.mu.Unlock()
}

// walLowWater returns the highest LSN that a checkpoint whose dump
// requests are issued after this call is guaranteed to cover: every
// record up to it is either fed or queued ahead of the dump message.
func (s *Server) walLowWater() uint64 {
	if s.wal == nil {
		return 0
	}
	s.inflight.mu.Lock()
	defer s.inflight.mu.Unlock()
	low := s.wal.LastLSN()
	for first := range s.inflight.firsts {
		if first-1 < low {
			low = first - 1
		}
	}
	return low
}

// walSafeLSN clamps a truncation candidate below the records a failed
// shard's drainer discarded. drainFailed drops queued batches on the
// premise they stay in the WAL for the next boot — but those batches
// closed their append→enqueue windows, so the low-water mark counts
// them as covered, and the failed shard's dump serves a frozen
// pre-failure cut that does not. Per shard, WAL record order is feed
// order, so everything the drainer dropped has LSN above the shard's
// last consumed record; truncating only below that keeps the dropped
// records replayable.
func (s *Server) walSafeLSN(lsn uint64) uint64 {
	for _, sh := range s.shards {
		if sh.failed.Load() {
			if l := sh.lastFedLSN.Load(); l < lsn {
				lsn = l
			}
		}
	}
	// Ledger clamp: leaves above the last CHECKPOINTED sealed LSN exist
	// only in the WAL (checkpoints persist sealed batches; the open
	// tail never). Truncating past them would make the ledger rebuild
	// start inside a batch — the live sealed boundary is not enough,
	// because batches sealed after the last checkpoint write are just
	// as unpersisted as the open tail.
	if s.ledger != nil {
		if l := s.ledgerCkptLSN.Load(); l < lsn {
			lsn = l
		}
	}
	return lsn
}

// walFailure applies the configured write-failure policy. Append
// errors are sticky in the log itself, so under WALShed every affected
// request keeps getting refused (503) while queries and checkpoints
// continue; under WALFailstop the whole ingest surface is wedged and
// readiness fails, pulling the node.
func (s *Server) walFailure(err error) {
	s.metrics.walAppendErrors.Add(1)
	// One flight dump per sticky failure: the first failed append
	// captures the rings, later ones (the error is sticky) don't
	// re-dump.
	if s.walErrDumped.CompareAndSwap(false, true) {
		s.DumpFlightRecorder("wal_error")
	}
	if s.cfg.WALFailure == WALShed {
		// Every batch of every later request hits this under a sticky
		// error; the limiter keeps it to a bounded rate with a
		// suppressed=N summary.
		if ok, suppressed := s.limWAL.Allow(); ok {
			args := []any{"err", err}
			if suppressed > 0 {
				args = append(args, "suppressed", suppressed)
			}
			s.log.Error("wal append failed; batch shed", args...)
		}
		return
	}
	if s.walFailed.CompareAndSwap(false, true) {
		s.log.Error("wal append failed; fail-stop: all further ingest refused", "err", err)
	}
}

// walRefusing reports whether fail-stop has wedged the ingest surface.
func (s *Server) walRefusing() bool { return s.walFailed.Load() }

// walBroken reports whether the log has a sticky write failure (either
// policy) — the ingest 503 signal.
func (s *Server) walBroken() bool {
	return s.wal != nil && (s.walFailed.Load() || s.wal.Err() != nil)
}

// truncateWAL drops sealed segments fully covered by a checkpoint.
func (s *Server) truncateWAL(lsn uint64) {
	if s.wal == nil || lsn == 0 {
		return
	}
	n, err := s.wal.TruncateBefore(lsn)
	if err != nil {
		s.log.Warn("wal truncation failed", "err", err)
		return
	}
	if n > 0 {
		s.metrics.walTruncated.Add(int64(n))
		s.log.Info("wal truncated", "segments", n, "through_lsn", lsn)
	}
}

// closeWAL flushes and closes the log; truncate additionally sheds
// segments covered by the final checkpoint first (clean shutdown
// only — never after a partial drain, and never without a checkpoint
// to replay from).
func (s *Server) closeWAL(truncate bool) {
	if s.wal == nil {
		return
	}
	if truncate && s.cfg.CheckpointPath != "" {
		// Clamped like the running checkpoint: the final checkpoint's
		// dump of a failed shard is its frozen pre-failure state, and
		// the records its drainer dropped exist only in the log.
		s.truncateWAL(s.walSafeLSN(s.wal.LastLSN()))
	}
	if err := s.wal.Close(); err != nil {
		s.log.Warn("wal close", "err", err)
	}
}
