package server

// Ledger integration: sealing on the durable ingest path (DESIGN.md
// §15). The ledger appends inside walAppend, under the same lock that
// assigns LSNs, so the leaf sequence is the WAL record sequence and a
// crash rebuild from replay signs byte-identical roots. Checkpoints
// persist only sealed batches; the open tail and any batches sealed
// after the last checkpoint rebuild from the WAL, which is why
// truncation is clamped to the last checkpointed sealed LSN.

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/ledger"
)

// openLedger builds the ledger when configured. Called from Start
// before restore (which loads checkpointed state into it).
func (s *Server) openLedger() error {
	if s.cfg.LedgerKey == nil {
		return nil
	}
	if s.cfg.WALDir == "" {
		return fmt.Errorf("server: ledger requires a WAL (set WALDir): sealing is defined over the durable ingest path")
	}
	l, err := ledger.New(ledger.Options{
		Key:   s.cfg.LedgerKey,
		Batch: s.cfg.LedgerBatch,
		Wait:  s.cfg.LedgerWait,
		OnSeal: func(root ledger.SignedRoot, dur time.Duration) {
			s.metrics.ledgerBatches.Add(1)
			s.metrics.ledgerLeaves.Add(int64(root.Leaves))
			s.metrics.ledgerSealDuration.observe(dur)
		},
	})
	if err != nil {
		return fmt.Errorf("server: opening ledger: %w", err)
	}
	s.ledger = l
	return nil
}

// proofBundle is the GET /v1/proofs/{case} body: the verdict and its
// evidence in one self-contained, offline-verifiable document.
type proofBundle struct {
	Case        string            `json:"case"`
	Outcome     string            `json:"outcome"`
	Purpose     string            `json:"purpose,omitempty"`
	Explanation *core.Explanation `json:"explanation,omitempty"`
	Proof       *ledger.CaseProof `json:"proof"`
}

// handleProof serves the verdict-with-evidence bundle for one case.
func (s *Server) handleProof(w http.ResponseWriter, r *http.Request) {
	if s.ledger == nil {
		http.Error(w, "ledger not enabled (start auditd with -ledger)", http.StatusNotFound)
		return
	}
	id := r.PathValue("id")
	p, err := s.ledger.ProveCase(id)
	if err != nil {
		if errors.Is(err, ledger.ErrUnknownCase) {
			http.Error(w, fmt.Sprintf("case %q has no ledger entries", id), http.StatusNotFound)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.metrics.ledgerProofs.Add(1)
	b := proofBundle{Case: id, Outcome: "unknown", Proof: p}
	if v, ok := s.shardFor(id).view(id); ok {
		b.Outcome = v.Outcome
		b.Purpose = v.Purpose
		b.Explanation = v.Explanation
	}
	writeJSON(w, http.StatusOK, b)
}

// rootsResponse is the GET /v1/roots body. Everything in it is
// deterministic for a given entry sequence — no wall clock — so a
// crash-rebuilt ledger answers byte-identically to an uninterrupted
// one (asserted by ci.sh crash).
type rootsResponse struct {
	PublicKey string              `json:"public_key"`
	Batches   int                 `json:"batches"`
	Leaves    uint64              `json:"leaves"`
	Open      int                 `json:"open"`
	Roots     []ledger.SignedRoot `json:"roots"`
}

// handleRoots lists the signed root chain; ?since=N returns roots with
// Seq > N (incremental polling for root followers).
func (s *Server) handleRoots(w http.ResponseWriter, r *http.Request) {
	if s.ledger == nil {
		http.Error(w, "ledger not enabled (start auditd with -ledger)", http.StatusNotFound)
		return
	}
	var since uint64
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "since must be a root sequence number", http.StatusBadRequest)
			return
		}
		since = n
	}
	batches, leaves, open, _ := s.ledger.Stats()
	writeJSON(w, http.StatusOK, rootsResponse{
		PublicKey: fmt.Sprintf("%x", s.ledger.PublicKey()),
		Batches:   batches,
		Leaves:    leaves,
		Open:      open,
		Roots:     s.ledger.Roots(since),
	})
}
