package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/hospital"
)

// hospitalScenario builds the paper's running example once per test.
func hospitalScenario(t *testing.T) *hospital.Scenario {
	t.Helper()
	sc, err := hospital.NewScenario()
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func hospitalChecker(sc *hospital.Scenario) *core.Checker {
	return core.NewChecker(sc.Registry, sc.Policy.Roles)
}

// expectedOutcomes runs the offline checker over the trail — the ground
// truth the streaming server must reproduce exactly.
func expectedOutcomes(t *testing.T, sc *hospital.Scenario, trail *audit.Trail) map[string]string {
	t.Helper()
	reports, err := hospitalChecker(sc).CheckTrail(trail)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for _, rep := range reports {
		want[rep.Case] = rep.Outcome.String()
	}
	return want
}

func ndjson(t *testing.T, trail *audit.Trail) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := audit.WriteJSONL(&buf, trail); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func startServer(t *testing.T, sc *hospital.Scenario, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(sc.Registry, hospitalChecker(sc), cfg)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func post(t *testing.T, url, contentType string, body []byte) (*http.Response, ingestResult) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res ingestResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatalf("decoding ingest response: %v", err)
	}
	return resp, res
}

type caseList struct {
	Cases []CaseView `json:"cases"`
	Total int        `json:"total"`
}

func getCases(t *testing.T, url string) caseList {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	var cl caseList
	if err := json.NewDecoder(resp.Body).Decode(&cl); err != nil {
		t.Fatal(err)
	}
	return cl
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// assertOutcomes compares the server's case views against the offline
// ground truth.
func assertOutcomes(t *testing.T, got caseList, want map[string]string) {
	t.Helper()
	if got.Total != len(want) {
		t.Errorf("server monitors %d cases, checker saw %d", got.Total, len(want))
	}
	for _, v := range got.Cases {
		if w, ok := want[v.Case]; !ok {
			t.Errorf("case %s: not in offline reports", v.Case)
		} else if v.Outcome != w {
			t.Errorf("case %s: server says %s, offline checker says %s", v.Case, v.Outcome, w)
		}
	}
}

// TestIngestMatchesOfflineChecker streams the Figure 4 trail as one
// NDJSON body and checks the live verdicts against CheckTrail: same
// cases, same tri-state outcomes, including the five known
// infringements.
func TestIngestMatchesOfflineChecker(t *testing.T) {
	sc := hospitalScenario(t)
	_, ts := startServer(t, sc, Config{Shards: 8})

	resp, res := post(t, ts.URL+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, sc.Trail))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest: %s", resp.Status)
	}
	if res.Accepted != sc.Trail.Len() || res.Quarantined != 0 {
		t.Fatalf("ingest result = %+v, want %d accepted", res, sc.Trail.Len())
	}

	want := expectedOutcomes(t, sc, sc.Trail)
	got := getCases(t, ts.URL+"/v1/cases")
	assertOutcomes(t, got, want)

	violations := getCases(t, ts.URL+"/v1/cases?outcome=violation")
	if violations.Total != 5 {
		t.Errorf("violations = %d, want the paper's 5 infringing cases", violations.Total)
	}
	for _, v := range violations.Cases {
		if v.Violation == "" {
			t.Errorf("case %s: violation outcome without diagnosis", v.Case)
		}
	}

	// Single-case endpoint, hit and miss.
	if code, _ := getBody(t, ts.URL+"/v1/cases/HT-10"); code != http.StatusOK {
		t.Errorf("GET /v1/cases/HT-10 = %d", code)
	}
	if code, _ := getBody(t, ts.URL+"/v1/cases/NO-99"); code != http.StatusNotFound {
		t.Errorf("GET /v1/cases/NO-99 = %d, want 404", code)
	}

	// Purposes report case counts that sum to the case total.
	code, body := getBody(t, ts.URL+"/v1/purposes")
	if code != http.StatusOK || !strings.Contains(body, "Treatment") {
		t.Errorf("GET /v1/purposes = %d %q", code, body)
	}
}

// TestConcurrentShardedIngest posts each case's entries from its own
// goroutine (per-case order preserved, cases racing each other) across
// 8 shards and requires verdicts identical to the single-threaded
// checker. Run under -race this is the sharding-contract test at the
// HTTP layer.
func TestConcurrentShardedIngest(t *testing.T) {
	sc := hospitalScenario(t)
	srv, ts := startServer(t, sc, Config{Shards: 8, QueueDepth: 4096})

	var wg sync.WaitGroup
	for _, caseID := range sc.Trail.Cases() {
		sub := sc.Trail.ByCase(caseID)
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Several small posts per case: entries of one case must
			// stay ordered even across requests.
			entries := sub.Entries()
			for i := 0; i < len(entries); i += 3 {
				end := i + 3
				if end > len(entries) {
					end = len(entries)
				}
				var buf bytes.Buffer
				for _, e := range entries[i:end] {
					if err := audit.AppendJSONL(&buf, e); err != nil {
						t.Error(err)
						return
					}
				}
				resp, err := http.Post(ts.URL+"/v1/events", "application/x-ndjson", &buf)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					t.Errorf("case %s chunk at %d: %s", caseID, i, resp.Status)
					return
				}
			}
		}()
	}
	wg.Wait()
	srv.Flush()

	assertOutcomes(t, getCases(t, ts.URL+"/v1/cases"), expectedOutcomes(t, sc, sc.Trail))
}

// TestBackpressure saturates a 1-deep single shard (workers not
// started, so nothing drains) and checks the 429 contract: Retry-After
// set, RejectedAtLine pointing at the first unaccepted line.
func TestBackpressure(t *testing.T) {
	sc := hospitalScenario(t)
	srv := New(sc.Registry, hospitalChecker(sc), Config{Shards: 1, QueueDepth: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, res := post(t, ts.URL+"/v1/events", "application/x-ndjson", ndjson(t, sc.Trail))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated ingest: %s, want 429", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if res.Accepted != 1 || res.RejectedAtLine != 2 {
		t.Errorf("result = %+v, want 1 accepted, rejected at line 2", res)
	}
	if n := srv.metrics.eventsRejected.Load(); n == 0 {
		t.Error("rejected counter did not move")
	}
}

// TestCheckpointRoundTrip snapshots mid-trail via Shutdown, restarts on
// the same file with a different shard count, streams the tail, and
// requires final verdicts identical to an uninterrupted run — including
// the dead (violating) cases and the persisted quarantine.
func TestCheckpointRoundTrip(t *testing.T) {
	sc := hospitalScenario(t)
	path := filepath.Join(t.TempDir(), "ckpt.json")

	cut := sc.Trail.Len() / 2
	head := audit.NewTrail(sc.Trail.Entries()[:cut])
	tail := audit.NewTrail(sc.Trail.Entries()[cut:])

	// Phase 1: ingest the head (plus one malformed line for the
	// quarantine), then drain and snapshot.
	srv1, ts1 := startServer(t, sc, Config{Shards: 4, CheckpointPath: path})
	body := append([]byte("this is not json\n"), ndjson(t, head)...)
	resp, res := post(t, ts1.URL+"/v1/events?wait=1", "application/x-ndjson", body)
	if resp.StatusCode != http.StatusAccepted || res.Accepted != cut || res.Quarantined != 1 {
		t.Fatalf("head ingest: %s %+v", resp.Status, res)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	ts1.Close()

	// A drained server refuses further ingest.
	resp2, err := http.Post(ts1.URL+"/v1/events", "application/x-ndjson", strings.NewReader(""))
	if err == nil {
		resp2.Body.Close()
		t.Fatal("closed test server still accepted a request")
	}

	// Phase 2: restore into a different shard layout and stream the
	// tail.
	srv2, ts2 := startServer(t, sc, Config{Shards: 7, CheckpointPath: path})
	resp, res = post(t, ts2.URL+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, tail))
	if resp.StatusCode != http.StatusAccepted || res.Accepted != sc.Trail.Len()-cut {
		t.Fatalf("tail ingest: %s %+v", resp.Status, res)
	}

	want := expectedOutcomes(t, sc, sc.Trail)
	got := getCases(t, ts2.URL+"/v1/cases")
	assertOutcomes(t, got, want)
	// Per-case entry counts must also survive the restart (resumed, not
	// restarted, analyses).
	for _, v := range got.Cases {
		if n := sc.Trail.ByCase(v.Case).Len(); v.Entries != n {
			t.Errorf("case %s: %d entries after restore+tail, want %d", v.Case, v.Entries, n)
		}
	}

	// The quarantined line from phase 1 survived the restart.
	code, qbody := getBody(t, ts2.URL+"/v1/quarantine")
	if code != http.StatusOK || !strings.Contains(qbody, "this is not json") {
		t.Errorf("quarantine after restore = %d %q", code, qbody)
	}

	if err := srv2.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestRunningCheckpointConsistency takes a live checkpoint through the
// shard queues (no drain) and checks the file restores into a server
// that, given the tail, still matches the offline checker.
func TestRunningCheckpointConsistency(t *testing.T) {
	sc := hospitalScenario(t)
	path := filepath.Join(t.TempDir(), "ckpt.json")

	cut := 2 * sc.Trail.Len() / 3
	head := audit.NewTrail(sc.Trail.Entries()[:cut])
	tail := audit.NewTrail(sc.Trail.Entries()[cut:])

	srv1, ts1 := startServer(t, sc, Config{Shards: 3, CheckpointPath: path, CheckpointEvery: time.Hour})
	if resp, _ := post(t, ts1.URL+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, head)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("head ingest: %s", resp.Status)
	}
	if err := srv1.checkpointRunning(); err != nil {
		t.Fatalf("live checkpoint: %v", err)
	}
	// srv1 keeps running; the snapshot must still be a complete cut.
	srv2, ts2 := startServer(t, sc, Config{Shards: 8, CheckpointPath: path})
	if resp, _ := post(t, ts2.URL+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, tail)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("tail ingest: %s", resp.Status)
	}
	assertOutcomes(t, getCases(t, ts2.URL+"/v1/cases"), expectedOutcomes(t, sc, sc.Trail))

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// srv2 has no pending work either; shut it down on a fresh path so
	// its final snapshot does not clobber anything under test.
	if err := srv2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestLenientCSVIngest posts the Figure 4 trail as CSV with a corrupted
// row: the row lands in quarantine, everything else is checked.
func TestLenientCSVIngest(t *testing.T) {
	sc := hospitalScenario(t)
	_, ts := startServer(t, sc, Config{Shards: 2})

	var buf bytes.Buffer
	if err := audit.WriteCSV(&buf, sc.Trail); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(buf.String(), "\n")
	lines[3] = "garbage,row\n"
	body := strings.Join(lines, "")

	resp, res := post(t, ts.URL+"/v1/events?wait=1", "text/csv", []byte(body))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("csv ingest: %s", resp.Status)
	}
	if res.Accepted != sc.Trail.Len()-1 || res.Quarantined != 1 {
		t.Fatalf("csv ingest result = %+v", res)
	}

	code, qbody := getBody(t, ts.URL+"/v1/quarantine")
	if code != http.StatusOK || !strings.Contains(qbody, "garbage") {
		t.Errorf("quarantine = %d %q", code, qbody)
	}
}

// TestMetricsAndHealth checks the Prometheus text surface and the
// liveness/readiness lifecycle.
func TestMetricsAndHealth(t *testing.T) {
	sc := hospitalScenario(t)
	srv := New(sc.Registry, hospitalChecker(sc), Config{Shards: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Not started yet: alive but not ready.
	if code, _ := getBody(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("healthz before start = %d", code)
	}
	if code, _ := getBody(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readyz before start = %d, want 503", code)
	}

	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	if code, _ := getBody(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Errorf("readyz after start = %d", code)
	}

	if resp, _ := post(t, ts.URL+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, sc.Trail)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest: %s", resp.Status)
	}
	code, body := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	for _, series := range []string{
		fmt.Sprintf("auditd_events_ingested_total %d", sc.Trail.Len()),
		"auditd_events_rejected_total 0",
		"auditd_events_quarantined_total 0",
		"auditd_verdicts_total{outcome=\"violation\"}",
		"auditd_verdicts_total{outcome=\"compliant\"}",
		"auditd_shard_queue_depth{shard=\"0\"}",
		"auditd_shard_queue_depth{shard=\"1\"}",
		"auditd_feed_latency_seconds_bucket",
		"auditd_feed_latency_seconds_count",
		"auditd_cases 8",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("metrics output missing %q", series)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// Draining/stopped: readyz 503 and ingest refused with 503.
	if code, _ := getBody(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readyz after shutdown = %d, want 503", code)
	}
	resp, err := http.Post(ts.URL+"/v1/events", "application/x-ndjson", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("ingest after shutdown = %s, want 503", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("drain 503 without Retry-After")
	}
}
