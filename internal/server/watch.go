package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// GET /v1/watch: a Server-Sent-Events stream of verdict transitions —
// the moment a case leaves "compliant" an event goes out, so an
// operator (or purposectl top) sees deviations as they happen instead
// of polling /v1/cases. Publishing is strictly non-blocking: the shard
// worker must never wait on a slow SSE client, so a subscriber whose
// buffer is full loses events (counted) rather than stalling replay.

// watchEvent is one SSE payload: a case's first transition out of
// compliant.
type watchEvent struct {
	Case    string    `json:"case"`
	Purpose string    `json:"purpose,omitempty"`
	Outcome string    `json:"outcome"`
	Detail  string    `json:"detail,omitempty"`
	Entries int       `json:"entries"`
	Shard   int       `json:"shard"`
	Time    time.Time `json:"time"`
}

// watchHub fans verdict transitions out to subscribers.
type watchHub struct {
	mu   sync.Mutex
	subs map[int]chan watchEvent
	next int

	published atomic.Int64
	dropped   atomic.Int64 // events lost to full subscriber buffers
}

func newWatchHub() *watchHub {
	return &watchHub{subs: map[int]chan watchEvent{}}
}

// subscribe registers a buffered subscriber and returns its id and
// channel.
func (h *watchHub) subscribe(buf int) (int, <-chan watchEvent) {
	ch := make(chan watchEvent, buf)
	h.mu.Lock()
	id := h.next
	h.next++
	h.subs[id] = ch
	h.mu.Unlock()
	return id, ch
}

// unsubscribe removes a subscriber; its channel is left to the GC (the
// publisher never closes channels, avoiding send-on-closed races).
func (h *watchHub) unsubscribe(id int) {
	h.mu.Lock()
	delete(h.subs, id)
	h.mu.Unlock()
}

// count reports live subscribers.
func (h *watchHub) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// publish offers the event to every subscriber without blocking.
// Nil-safe so shards constructed outside a server can skip wiring.
func (h *watchHub) publish(ev watchEvent) {
	if h == nil {
		return
	}
	h.published.Add(1)
	h.mu.Lock()
	for _, ch := range h.subs {
		select {
		case ch <- ev:
		default:
			h.dropped.Add(1)
		}
	}
	h.mu.Unlock()
}

// watchHeartbeat keeps idle SSE connections alive through proxies and
// lets the handler notice a dead client between events.
const watchHeartbeat = 15 * time.Second

// handleWatch streams verdict transitions as SSE. ?outcome= filters to
// one outcome (violation|indeterminate). The subscription is dropped
// the moment the client disconnects (request context), so abandoned
// watchers don't accumulate.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	outcome := r.URL.Query().Get("outcome")
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	id, ch := s.watch.subscribe(64)
	defer s.watch.unsubscribe(id)

	fmt.Fprintf(w, ": watching verdict transitions\n\n")
	fl.Flush()

	heartbeat := time.NewTicker(watchHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			if outcome != "" && ev.Outcome != outcome {
				continue
			}
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: verdict\ndata: %s\n\n", data)
			fl.Flush()
		case <-heartbeat.C:
			fmt.Fprintf(w, ": keepalive\n\n")
			fl.Flush()
		}
	}
}
