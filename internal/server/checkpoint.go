package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/encode"
	"repro/internal/ledger"
)

// Checkpointing: the server periodically (and on shutdown, after the
// queues drain) writes its whole live state — merged monitor state,
// case views, quarantine — to CheckpointPath via write-to-temp +
// atomic rename, so a crash never leaves a torn file. On Start the
// file is read back and the cases are re-split across shards by case
// hash, which also makes the shard count a restart-time knob: a
// 4-shard snapshot restores cleanly into 16 shards.
//
// Consistency: a running checkpoint asks every shard for a dump
// through its own queue, so each shard's cut reflects exactly the
// entries fed before the request — a consistent point-in-time cut per
// shard. Entries still waiting in queues at a crash are not in the
// snapshot; producers that need zero loss should use ?wait=1 and
// retry anything unacknowledged.

// checkpointFile is the on-disk format.
type checkpointFile struct {
	Version   int                  `json:"version"`
	SavedUnix int64                `json:"saved_unix"`
	Monitor   *core.MonitorState   `json:"monitor"`
	Views     map[string]*CaseView `json:"views,omitempty"`
	// Quarantine persists the held records and the all-time total so
	// /v1/quarantine survives restarts.
	QuarantineTotal int64              `json:"quarantine_total,omitempty"`
	Quarantine      []QuarantineRecord `json:"quarantine,omitempty"`
	// Ledger persists the sealed batches (open leaves rebuild from WAL
	// replay — see walSafeLSN for the truncation clamp that keeps them
	// replayable).
	Ledger *ledger.State `json:"ledger,omitempty"`
}

const checkpointVersion = 1

// checkpointLoop snapshots every CheckpointEvery until stopped.
func (s *Server) checkpointLoop() {
	defer close(s.ckptDone)
	if s.cfg.CheckpointPath == "" {
		<-s.stopCkpt
		return
	}
	t := time.NewTicker(s.cfg.CheckpointEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stopCkpt:
			return
		case <-t.C:
			if err := s.checkpointRunning(); err != nil {
				s.metrics.snapshotErrors.Add(1)
				s.log.Error("checkpoint failed", "err", err)
			}
		}
	}
}

// checkpointRunning takes a consistent cut through the live shard
// queues and writes it. On success, WAL segments fully covered by the
// cut are truncated: the low-water mark is captured BEFORE the dump
// fan-out, so a record at or below it is provably either fed already
// or queued ahead of the dump message (see walLowWater).
func (s *Server) checkpointRunning() error {
	if s.cfg.CheckpointPath == "" {
		return nil
	}
	lowWater := s.walLowWater()
	replies := make([]<-chan shardDump, len(s.shards))
	for i, sh := range s.shards {
		replies[i] = sh.requestDump()
	}
	dumps := make([]shardDump, len(s.shards))
	for i, ch := range replies {
		dumps[i] = <-ch
	}
	for i := range dumps {
		if dumps[i].incomplete {
			// The shard's dump panicked (serveSnap still replied, so
			// the loop is not wedged). Writing a cut missing its cases
			// would lose them on restore — skip the whole round and
			// retry next tick; the previous checkpoint stays in place.
			return fmt.Errorf("server: shard %d dump panicked; checkpoint skipped", i)
		}
	}
	if err := s.writeCheckpoint(dumps); err != nil {
		return err
	}
	// Clamped so records a failed shard's drainer dropped — provably
	// NOT in any dump despite sitting below the low-water mark — stay
	// in the log for boot replay (walSafeLSN). Checked after the dumps
	// are collected: a shard that fails later can only be dropping
	// records above lowWater, since anything at or below it was fed
	// before the dump this checkpoint just persisted.
	s.truncateWAL(s.walSafeLSN(lowWater))
	return nil
}

// checkpointFinal reads the monitors directly; only valid after the
// shard workers have exited.
func (s *Server) checkpointFinal() error {
	if s.cfg.CheckpointPath == "" {
		return nil
	}
	dumps := make([]shardDump, len(s.shards))
	for i, sh := range s.shards {
		dumps[i] = sh.dump()
	}
	return s.writeCheckpoint(dumps)
}

// checkpointPartial is the drain-deadline checkpoint: direct dumps
// from the shards that finished, and — for the stragglers — their
// cases carried over from the previous checkpoint file, so a stuck
// shard costs at most the progress since the last cut (still replayed
// from the WAL at next boot), never its whole history.
func (s *Server) checkpointPartial(drained []*shard, stale map[int]bool) error {
	if s.cfg.CheckpointPath == "" {
		return nil
	}
	dumps := make([]shardDump, 0, len(drained)+1)
	for _, sh := range drained {
		dumps = append(dumps, sh.dump())
	}
	if len(stale) > 0 {
		prev, err := s.readCheckpointFile()
		switch {
		case err != nil:
			s.log.Warn("previous checkpoint unreadable; straggler cases not carried over", "err", err)
		case prev == nil:
			s.log.Warn("no previous checkpoint; straggler cases restored from WAL only")
		default:
			d := shardDump{views: map[string]*CaseView{}}
			if prev.Monitor != nil {
				d.state = &core.MonitorState{
					Version: prev.Monitor.Version,
					States:  prev.Monitor.States,
					Cases:   map[string]core.CaseSnapshot{},
				}
				for id, cs := range prev.Monitor.Cases {
					if stale[core.ShardCase(id, len(s.shards))] {
						d.state.Cases[id] = cs
					}
				}
			}
			for id, v := range prev.Views {
				if stale[core.ShardCase(id, len(s.shards))] {
					d.views[id] = v
				}
			}
			dumps = append(dumps, d)
		}
	}
	return s.writeCheckpoint(dumps)
}

// writeCheckpoint merges the shard dumps and writes the file
// atomically.
func (s *Server) writeCheckpoint(dumps []shardDump) error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	start := time.Now()

	merged := mergeStates(dumps)
	views := map[string]*CaseView{}
	for _, d := range dumps {
		for id, v := range d.views {
			views[id] = v
		}
	}
	_, qtotal := s.quar.stats()
	recs := s.quar.snapshot()
	file := checkpointFile{
		Version:         checkpointVersion,
		SavedUnix:       time.Now().Unix(),
		Monitor:         merged,
		Views:           views,
		QuarantineTotal: qtotal,
		Quarantine:      recs,
	}
	if s.ledger != nil {
		st, err := s.ledger.ExportState()
		if err != nil {
			return fmt.Errorf("server: exporting ledger state: %w", err)
		}
		file.Ledger = st
	}

	dir := filepath.Dir(s.cfg.CheckpointPath)
	tmp, err := os.CreateTemp(dir, ".auditd-ckpt-*")
	if err != nil {
		return fmt.Errorf("server: checkpoint temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if s.cfg.BinaryCheckpoint {
		err = writeCheckpointBinary(tmp, &file)
	} else if err = json.NewEncoder(tmp).Encode(&file); err != nil {
		err = fmt.Errorf("server: encoding checkpoint: %w", err)
	}
	if err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("server: syncing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("server: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.cfg.CheckpointPath); err != nil {
		return fmt.Errorf("server: publishing checkpoint: %w", err)
	}
	if file.Ledger != nil {
		// Only now — with the state durably published — may truncation
		// advance past these sealed leaves.
		s.ledgerCkptLSN.Store(file.Ledger.LastLSN())
	}

	d := time.Since(start)
	s.metrics.snapshotDuration.observe(d)
	s.metrics.snapshots.Add(1)
	s.metrics.lastSnapshotNano.Store(time.Now().UnixNano())
	s.log.Info("checkpoint written", "path", s.cfg.CheckpointPath,
		"cases", len(merged.Cases), "dur_ms", float64(d.Microseconds())/1000)
	return nil
}

// mergeStates folds per-shard monitor states into one, re-indexing
// each shard's state table into a shared one.
func mergeStates(dumps []shardDump) *core.MonitorState {
	merged := &core.MonitorState{Version: 2, Cases: map[string]core.CaseSnapshot{}}
	index := map[string]int{}
	for _, d := range dumps {
		if d.state == nil {
			continue
		}
		remap := make([]int, len(d.state.States))
		for i, term := range d.state.States {
			ref, ok := index[term]
			if !ok {
				ref = len(merged.States)
				index[term] = ref
				merged.States = append(merged.States, term)
			}
			remap[i] = ref
		}
		for id, cs := range d.state.Cases {
			configs := make([]core.ConfigSnapshot, len(cs.Configs))
			for i, cfg := range cs.Configs {
				configs[i] = core.ConfigSnapshot{StateRef: remap[cfg.StateRef], Active: cfg.Active}
			}
			cs.Configs = configs
			merged.Cases[id] = cs
		}
	}
	return merged
}

// readCheckpointFile reads and decodes the checkpoint file, in either
// format. A missing file is (nil, nil).
func (s *Server) readCheckpointFile() (*checkpointFile, error) {
	data, err := os.ReadFile(s.cfg.CheckpointPath)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("server: opening checkpoint: %w", err)
	}
	var file checkpointFile
	if encode.IsBinaryContainer(data) {
		bf, err := readCheckpointBinary(data)
		if err != nil {
			return nil, fmt.Errorf("server: decoding checkpoint %s: %w", s.cfg.CheckpointPath, err)
		}
		file = *bf
	} else {
		if err := json.Unmarshal(data, &file); err != nil {
			return nil, fmt.Errorf("server: decoding checkpoint %s: %w", s.cfg.CheckpointPath, err)
		}
		if file.Version != checkpointVersion {
			return nil, fmt.Errorf("server: unsupported checkpoint version %d", file.Version)
		}
	}
	return &file, nil
}

// restore loads the checkpoint file, if configured and present, and
// splits it across the shards. Called from Start, before the workers
// run.
func (s *Server) restore() error {
	if s.cfg.CheckpointPath == "" {
		return nil
	}
	fp, err := s.readCheckpointFile()
	if err != nil {
		return err
	}
	if fp == nil {
		return nil
	}
	file := *fp
	if file.Monitor != nil {
		// Split cases by hash; every per-shard state shares the full
		// term table, so no re-indexing is needed.
		parts := make([]*core.MonitorState, len(s.shards))
		for id, cs := range file.Monitor.Cases {
			i := core.ShardCase(id, len(s.shards))
			if parts[i] == nil {
				parts[i] = &core.MonitorState{
					Version: file.Monitor.Version,
					States:  file.Monitor.States,
					Cases:   map[string]core.CaseSnapshot{},
				}
			}
			parts[i].Cases[id] = cs
		}
		for i, part := range parts {
			if part == nil {
				continue
			}
			if err := s.shards[i].mon.LoadState(part); err != nil {
				return fmt.Errorf("server: restoring shard %d: %w", i, err)
			}
		}
	}
	for id, v := range file.Views {
		s.shardFor(id).loadViews(map[string]*CaseView{id: v})
	}
	s.quar.load(file.QuarantineTotal, file.Quarantine)
	if s.ledger != nil && file.Ledger != nil {
		// LoadState re-derives every chain, root and signature and
		// refuses a checkpoint that fails any of them: a tampered
		// checkpoint cannot smuggle state into the ledger.
		if err := s.ledger.LoadState(file.Ledger); err != nil {
			return fmt.Errorf("server: restoring ledger: %w", err)
		}
		s.ledgerCkptLSN.Store(file.Ledger.LastLSN())
	}
	s.metrics.lastSnapshotNano.Store(time.Unix(file.SavedUnix, 0).UnixNano())
	s.log.Info("checkpoint restored", "path", s.cfg.CheckpointPath,
		"cases", len(file.Views), "saved", time.Unix(file.SavedUnix, 0).Format(time.RFC3339))
	return nil
}
