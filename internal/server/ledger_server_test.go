package server

import (
	"context"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/json"
	"net/http"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/ledger"
	"repro/internal/wal"
)

// Ledger-on-the-server tests. The contract under test is DESIGN.md §15:
// an acknowledged entry is provable (inclusion proof to a signed root),
// proofs verify offline with only the public key, and a kill -9 reboot
// rebuilds the ledger from WAL replay into byte-identical signed roots —
// the crash leaves no seam in the evidence.

func ledgerTestKey() ed25519.PrivateKey {
	seed := sha256.Sum256([]byte("server-ledger-test-seed"))
	return ed25519.NewKeyFromSeed(seed[:])
}

func ledgerConfig(t *testing.T, shards, batch int) Config {
	t.Helper()
	cfg, _ := walConfig(t, shards)
	cfg.WALFsync = wal.FsyncInterval
	cfg.LedgerKey = ledgerTestKey()
	cfg.LedgerBatch = batch
	return cfg
}

// TestProofEndpointVerifiesOffline streams the Figure 4 trail, fetches
// the proof bundle for every case, and verifies each offline against
// the public key — plus the root chain from /v1/roots. The violating
// cases must carry their verdicts in the bundle: a verdict shipped with
// evidence.
func TestProofEndpointVerifiesOffline(t *testing.T) {
	sc := hospitalScenario(t)
	cfg := ledgerConfig(t, 3, 4)
	srv, ts := startServer(t, sc, cfg)

	if resp, _ := post(t, ts.URL+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, sc.Trail)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest: %s", resp.Status)
	}

	pub := cfg.LedgerKey.Public().(ed25519.PublicKey)
	want := expectedOutcomes(t, sc, sc.Trail)
	for id, outcome := range want {
		code, body := getBody(t, ts.URL+"/v1/proofs/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET /v1/proofs/%s: %d %s", id, code, body)
		}
		var b struct {
			Case    string            `json:"case"`
			Outcome string            `json:"outcome"`
			Proof   *ledger.CaseProof `json:"proof"`
		}
		if err := json.Unmarshal([]byte(body), &b); err != nil {
			t.Fatalf("case %s: decoding bundle: %v", id, err)
		}
		if b.Outcome != outcome {
			t.Errorf("case %s: bundle outcome %s, want %s", id, b.Outcome, outcome)
		}
		if err := ledger.VerifyCaseProof(pub, b.Proof); err != nil {
			t.Errorf("case %s: proof does not verify: %v", id, err)
		}
		if n := sc.Trail.ByCase(id).Len(); len(b.Proof.Entries) != n {
			t.Errorf("case %s: proof covers %d entries, want %d", id, len(b.Proof.Entries), n)
		}
	}

	code, body := getBody(t, ts.URL+"/v1/roots")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/roots: %d %s", code, body)
	}
	var rr rootsResponse
	if err := json.Unmarshal([]byte(body), &rr); err != nil {
		t.Fatal(err)
	}
	if err := ledger.VerifyRoots(pub, rr.Roots); err != nil {
		t.Errorf("root chain does not verify: %v", err)
	}

	if code, _ := getBody(t, ts.URL+"/v1/proofs/NO-SUCH-CASE"); code != http.StatusNotFound {
		t.Errorf("unknown case: %d, want 404", code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestProofEndpointsDisabledWithoutLedger keeps the surface honest when
// the ledger is off: both endpoints answer 404, not empty proofs.
func TestProofEndpointsDisabledWithoutLedger(t *testing.T) {
	sc := hospitalScenario(t)
	_, ts := startServer(t, sc, Config{Shards: 2})
	if code, _ := getBody(t, ts.URL+"/v1/proofs/HT-10"); code != http.StatusNotFound {
		t.Errorf("/v1/proofs without ledger: %d, want 404", code)
	}
	if code, _ := getBody(t, ts.URL+"/v1/roots"); code != http.StatusNotFound {
		t.Errorf("/v1/roots without ledger: %d, want 404", code)
	}
}

// TestLedgerRequiresWAL: sealing is defined over the durable ingest
// path; a ledger without a WAL must refuse to start.
func TestLedgerRequiresWAL(t *testing.T) {
	sc := hospitalScenario(t)
	srv := New(sc.Registry, hospitalChecker(sc), Config{Shards: 2, LedgerKey: ledgerTestKey()})
	if err := srv.Start(); err == nil {
		srv.Crash()
		t.Fatal("Start accepted a ledger without a WAL")
	}
}

// ingestHalves streams the trail in two bodies on one connection, so
// the global WAL order is the trail order in every run being compared.
func ingestHalves(t *testing.T, url string, trail *audit.Trail) {
	t.Helper()
	cut := trail.Len() / 2
	head := audit.NewTrail(trail.Entries()[:cut])
	tail := audit.NewTrail(trail.Entries()[cut:])
	for _, part := range []*audit.Trail{head, tail} {
		if resp, _ := post(t, url+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, part)); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("ingest: %s", resp.Status)
		}
	}
}

// TestLedgerCrashRebuildMatchesControl is the tamper-evidence half of
// the kill -9 contract: crash mid-stream (after a live checkpoint, so
// recovery mixes checkpointed sealed batches with WAL-replayed leaves),
// reboot, finish the stream — and every signed root must be
// byte-identical to an uninterrupted control run with the same key.
// Determinism is what makes the ledger auditable across failures: a
// verifier holding roots from before the crash needs the rebuilt chain
// to extend, not fork, them.
func TestLedgerCrashRebuildMatchesControl(t *testing.T) {
	sc := hospitalScenario(t)
	cut := sc.Trail.Len() / 2
	head := audit.NewTrail(sc.Trail.Entries()[:cut])
	tail := audit.NewTrail(sc.Trail.Entries()[cut:])

	// Crashed run: half the trail, a live checkpoint (persists sealed
	// batches and may truncate the WAL up to them), crash, reboot,
	// other half.
	cfg := ledgerConfig(t, 3, 4)
	srv1, ts1 := startServer(t, sc, cfg)
	if resp, _ := post(t, ts1.URL+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, head)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("head ingest: %s", resp.Status)
	}
	if err := srv1.checkpointRunning(); err != nil {
		t.Fatalf("live checkpoint: %v", err)
	}
	srv1.Crash()
	ts1.Close()

	srv2, ts2 := startServer(t, sc, cfg)
	if resp, _ := post(t, ts2.URL+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, tail)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("tail ingest: %s", resp.Status)
	}
	srv2.ledger.Cut()
	crashed := srv2.ledger.Roots(0)

	// Proofs still verify on the rebuilt ledger.
	pub := cfg.LedgerKey.Public().(ed25519.PublicKey)
	for _, id := range []string{"HT-10", "HT-11"} {
		p, err := srv2.ledger.ProveCase(id)
		if err != nil {
			t.Fatalf("ProveCase(%s) after rebuild: %v", id, err)
		}
		if err := ledger.VerifyCaseProof(pub, p); err != nil {
			t.Errorf("case %s: rebuilt proof does not verify: %v", id, err)
		}
	}

	// Control run: same key, fresh directories, no interruption.
	ctl := ledgerConfig(t, 3, 4)
	srv3, ts3 := startServer(t, sc, ctl)
	ingestHalves(t, ts3.URL, sc.Trail)
	srv3.ledger.Cut()
	control := srv3.ledger.Roots(0)

	if len(crashed) == 0 {
		t.Fatal("crashed run sealed no batches")
	}
	if !reflect.DeepEqual(crashed, control) {
		t.Errorf("rebuilt root chain diverges from uninterrupted control\ncrashed: %+v\ncontrol: %+v", crashed, control)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := srv3.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestLedgerCheckpointRoundTrip: a clean shutdown seals the open tail
// and persists every batch; the next boot restores them from the
// checkpoint alone (the WAL was truncated past them) and extends the
// same chain.
func TestLedgerCheckpointRoundTrip(t *testing.T) {
	sc := hospitalScenario(t)
	cfg := ledgerConfig(t, 2, 4)
	cfg.BinaryCheckpoint = true

	srv1, ts1 := startServer(t, sc, cfg)
	if resp, _ := post(t, ts1.URL+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, sc.Trail)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest: %s", resp.Status)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	want := srv1.ledger.Roots(0)
	if len(want) == 0 {
		t.Fatal("shutdown sealed no batches")
	}

	srv2, _ := startServer(t, sc, cfg)
	got := srv2.ledger.Roots(0)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("restored root chain differs\ngot:  %+v\nwant: %+v", got, want)
	}
	if lsn := srv2.ledgerCkptLSN.Load(); lsn != srv2.ledger.LastSealedLSN() {
		t.Errorf("ledgerCkptLSN %d, want %d (restore should trust the checkpointed boundary)",
			lsn, srv2.ledger.LastSealedLSN())
	}
	if err := srv2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestLedgerTamperedCheckpointRefusesBoot flips one byte of a sealed
// entry inside the checkpoint and requires Start to fail: the ledger
// re-derives every chain and signature on restore, so a doctored
// checkpoint cannot smuggle history past the signatures.
func TestLedgerTamperedCheckpointRefusesBoot(t *testing.T) {
	sc := hospitalScenario(t)
	cfg := ledgerConfig(t, 2, 4)

	srv1, ts1 := startServer(t, sc, cfg)
	if resp, _ := post(t, ts1.URL+"/v1/events?wait=1", "application/x-ndjson", ndjson(t, sc.Trail)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest: %s", resp.Status)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	data, err := os.ReadFile(cfg.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	var file map[string]json.RawMessage
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatal(err)
	}
	var st ledger.State
	if err := json.Unmarshal(file["ledger"], &st); err != nil {
		t.Fatalf("checkpoint has no ledger state: %v", err)
	}
	entry := string(st.Batches[0].Entries[0])
	if !strings.Contains(entry, `"user":`) {
		t.Fatalf("unexpected entry shape: %s", entry)
	}
	st.Batches[0].Entries[0] = json.RawMessage(strings.Replace(entry, `"user":"`, `"user":"x`, 1))
	raw, err := json.Marshal(&st)
	if err != nil {
		t.Fatal(err)
	}
	file["ledger"] = raw
	out, err := json.Marshal(file)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cfg.CheckpointPath, out, 0o644); err != nil {
		t.Fatal(err)
	}

	srv2 := New(sc.Registry, hospitalChecker(sc), cfg)
	if err := srv2.Start(); err == nil {
		srv2.Crash()
		t.Fatal("Start accepted a checkpoint with a tampered ledger entry")
	}
}
