package server

// Binary (v2) checkpoints: the same logical content as the JSON
// checkpointFile, packed into the flat binary container from
// internal/encode (DESIGN.md §13). The dominant cost of a JSON
// checkpoint is string-escaping the monitor's canonical COWS terms —
// long, punctuation-heavy strings — on every write and unescaping
// them on every boot; the binary format stores that table as a raw
// string-table section and keeps only the small, irregular remainder
// (case metadata, views, quarantine) as JSON sections. Restore sniffs
// the container magic, so either format restores regardless of the
// BinaryCheckpoint flag — the flag only selects what gets written.

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/encode"
)

// binaryCheckpointVersion is the checkpoint format version carried in
// binary containers ("v2": same cut semantics, flat encoding).
const binaryCheckpointVersion = 2

// Checkpoint section ids.
const (
	secCkptMeta       = uint32(1) // JSON: version, timestamp, totals
	secCkptTerms      = uint32(2) // string table: monitor state terms
	secCkptCases      = uint32(3) // JSON: case snapshots (StateRef into terms)
	secCkptViews      = uint32(4) // JSON: case views
	secCkptQuarantine = uint32(5) // JSON: held quarantine records
	secCkptLedger     = uint32(6) // JSON: sealed ledger batches (absent pre-PR8)
)

// binCkptMeta is the binary checkpoint's JSON metadata section.
type binCkptMeta struct {
	Version         int   `json:"version"`
	SavedUnix       int64 `json:"saved_unix"`
	MonitorVersion  int   `json:"monitor_version,omitempty"`
	QuarantineTotal int64 `json:"quarantine_total,omitempty"`
}

// writeCheckpointBinary packs the assembled checkpoint into a binary
// container on w.
func writeCheckpointBinary(w io.Writer, file *checkpointFile) error {
	meta := binCkptMeta{
		Version:         binaryCheckpointVersion,
		SavedUnix:       file.SavedUnix,
		QuarantineTotal: file.QuarantineTotal,
	}
	var terms []string
	var cases map[string]core.CaseSnapshot
	if file.Monitor != nil {
		meta.MonitorVersion = file.Monitor.Version
		terms = file.Monitor.States
		cases = file.Monitor.Cases
	}
	metaJSON, err := json.Marshal(&meta)
	if err != nil {
		return fmt.Errorf("server: encoding checkpoint meta: %w", err)
	}
	casesJSON, err := json.Marshal(cases)
	if err != nil {
		return fmt.Errorf("server: encoding checkpoint cases: %w", err)
	}
	viewsJSON, err := json.Marshal(file.Views)
	if err != nil {
		return fmt.Errorf("server: encoding checkpoint views: %w", err)
	}
	quarJSON, err := json.Marshal(file.Quarantine)
	if err != nil {
		return fmt.Errorf("server: encoding checkpoint quarantine: %w", err)
	}
	sections := []encode.Section{
		{ID: secCkptMeta, Data: metaJSON},
		{ID: secCkptTerms, Data: encode.StringTableSection(terms)},
		{ID: secCkptCases, Data: casesJSON},
		{ID: secCkptViews, Data: viewsJSON},
		{ID: secCkptQuarantine, Data: quarJSON},
	}
	if file.Ledger != nil {
		// The ledger state is irregular (hex hashes, raw entry JSON), so
		// it rides as a JSON section; its integrity does not depend on
		// the container — LoadState re-verifies every byte.
		ledgerJSON, err := json.Marshal(file.Ledger)
		if err != nil {
			return fmt.Errorf("server: encoding checkpoint ledger: %w", err)
		}
		sections = append(sections, encode.Section{ID: secCkptLedger, Data: ledgerJSON})
	}
	return encode.WriteContainer(w, encode.KindCheckpoint, sections)
}

// readCheckpointBinary decodes a binary checkpoint image back into the
// logical checkpointFile shape restore splits across shards.
func readCheckpointBinary(data []byte) (*checkpointFile, error) {
	secs, err := encode.ReadContainer(data, encode.KindCheckpoint)
	if err != nil {
		return nil, err
	}
	var meta binCkptMeta
	if err := json.Unmarshal(secs[secCkptMeta], &meta); err != nil {
		return nil, fmt.Errorf("server: checkpoint meta section: %w", err)
	}
	if meta.Version != binaryCheckpointVersion {
		return nil, fmt.Errorf("server: unsupported binary checkpoint version %d", meta.Version)
	}
	terms, err := encode.ReadStringTableSection(secs[secCkptTerms])
	if err != nil {
		return nil, fmt.Errorf("server: checkpoint terms section: %w", err)
	}
	file := &checkpointFile{
		Version:         checkpointVersion,
		SavedUnix:       meta.SavedUnix,
		QuarantineTotal: meta.QuarantineTotal,
	}
	var cases map[string]core.CaseSnapshot
	if err := json.Unmarshal(secs[secCkptCases], &cases); err != nil {
		return nil, fmt.Errorf("server: checkpoint cases section: %w", err)
	}
	if cases != nil || len(terms) > 0 {
		mv := meta.MonitorVersion
		if mv == 0 {
			mv = 2
		}
		if cases == nil {
			cases = map[string]core.CaseSnapshot{}
		}
		file.Monitor = &core.MonitorState{Version: mv, States: terms, Cases: cases}
	}
	if err := json.Unmarshal(secs[secCkptViews], &file.Views); err != nil {
		return nil, fmt.Errorf("server: checkpoint views section: %w", err)
	}
	if err := json.Unmarshal(secs[secCkptQuarantine], &file.Quarantine); err != nil {
		return nil, fmt.Errorf("server: checkpoint quarantine section: %w", err)
	}
	if data, ok := secs[secCkptLedger]; ok {
		if err := json.Unmarshal(data, &file.Ledger); err != nil {
			return nil, fmt.Errorf("server: checkpoint ledger section: %w", err)
		}
	}
	return file, nil
}
