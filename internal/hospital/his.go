package hospital

import (
	"crypto/ed25519"
	"crypto/sha256"
	"fmt"
	"sync"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/policy"
)

// HIS simulates the Hospital Information System the paper assumes
// (Section 2): electronic patient records organized in sections, every
// access mediated by the data protection policy (Definition 3) and
// every performed action recorded in the audit database with the
// Definition 4 schema — task and case included, as transactional
// systems do (Section 3.5). The audit trail that purpose control later
// replays is exactly what this front end wrote.
//
// An HIS is safe for concurrent use.
type HIS struct {
	pdp  *policy.PDP
	mu   sync.Mutex
	epr  map[string]map[string]string // subject -> path -> content
	log  *audit.Store
	seal *ledger.Ledger
	now  func() time.Time
}

// ErrDenied is returned (wrapped) when the policy denies an access.
var ErrDenied = fmt.Errorf("hospital: access denied")

// NewHIS builds an HIS over the scenario's policy machinery. sealKey
// protects the integrity of the audit log; clock is injectable for
// deterministic tests (nil = time.Now).
//
// The integrity layer is the Merkle ledger (internal/ledger) with
// SecureLog-compatible per-leaf seals under sealKey: SealedEntries()
// still verifies with audit.Verify(sealKey, ...), and the ledger
// additionally chains batches into signed roots so the hospital's own
// log supports inclusion proofs. The signing key is derived from
// sealKey — the HIS models one trust domain, not a key ceremony.
func NewHIS(fw *core.Framework, sealKey []byte, clock func() time.Time) *HIS {
	if clock == nil {
		clock = time.Now
	}
	seed := sha256.Sum256(append([]byte("purpose-control-his-ledger/"), sealKey...))
	l, err := ledger.New(ledger.Options{
		Key:     ed25519.NewKeyFromSeed(seed[:]),
		Batch:   8,
		SealKey: sealKey,
	})
	if err != nil {
		// Unreachable: the derived key always has the right size.
		panic(err)
	}
	return &HIS{
		pdp:  fw.PDP,
		epr:  map[string]map[string]string{},
		log:  audit.NewStore(),
		seal: l,
		now:  clock,
	}
}

// Admit registers a patient with empty EPR sections.
func (h *HIS) Admit(patient string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.epr[patient] == nil {
		h.epr[patient] = map[string]string{}
	}
}

// Patients returns the admitted patients (unordered).
func (h *HIS) Patients() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.epr))
	for p := range h.epr {
		out = append(out, p)
	}
	return out
}

// authorize runs Definition 3 for the request.
func (h *HIS) authorize(user, role, action, task, caseID string, obj policy.Object) error {
	dec := h.pdp.Evaluate(policy.AccessRequest{
		User: user, Role: role, Action: action, Object: obj, Task: task, Case: caseID,
	})
	if !dec.Granted {
		return fmt.Errorf("%w: %s", ErrDenied, dec.Reason)
	}
	return nil
}

// record appends the performed action to the audit database and the
// sealed log.
func (h *HIS) record(user, role, action, task, caseID string, obj policy.Object, st audit.Status) error {
	e := audit.Entry{
		User: user, Role: role, Action: action, Object: obj,
		Task: task, Case: caseID, Time: h.now(), Status: st,
	}
	if err := h.log.Append(e); err != nil {
		return fmt.Errorf("hospital: recording audit entry: %w", err)
	}
	if err := h.seal.Append([]audit.Entry{e}, 0); err != nil {
		return fmt.Errorf("hospital: sealing audit entry: %w", err)
	}
	return nil
}

// Read returns a section's content after authorization, logging the
// access.
func (h *HIS) Read(user, role, task, caseID string, obj policy.Object) (string, error) {
	if err := h.authorize(user, role, "read", task, caseID, obj); err != nil {
		return "", err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	sections, ok := h.epr[obj.Subject]
	if !ok {
		return "", fmt.Errorf("hospital: unknown patient %q", obj.Subject)
	}
	if err := h.record(user, role, "read", task, caseID, obj, audit.Success); err != nil {
		return "", err
	}
	return sections[obj.String()], nil
}

// Write stores a section's content after authorization, logging the
// access.
func (h *HIS) Write(user, role, task, caseID string, obj policy.Object, content string) error {
	if err := h.authorize(user, role, "write", task, caseID, obj); err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	sections, ok := h.epr[obj.Subject]
	if !ok {
		return fmt.Errorf("hospital: unknown patient %q", obj.Subject)
	}
	sections[obj.String()] = content
	return h.record(user, role, "write", task, caseID, obj, audit.Success)
}

// Execute runs a subject-less tool (e.g. ScanSoftware) after
// authorization, logging the execution.
func (h *HIS) Execute(user, role, task, caseID, tool string) error {
	obj := policy.Object{Path: []string{tool}}
	if err := h.authorize(user, role, "execute", task, caseID, obj); err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.record(user, role, "execute", task, caseID, obj, audit.Success)
}

// Cancel logs a task failure (the paper's cancel rows): no object, a
// failure status. The preventive layer is not consulted — nothing is
// accessed — but purpose control will require an error boundary.
func (h *HIS) Cancel(user, role, task, caseID string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.record(user, role, "cancel", task, caseID, policy.Object{}, audit.Failure)
}

// FindPatients returns the patients whose EPR section the requester may
// read under the claimed task/case — the paper's footnote 3 query:
// visibility depends on the claimed purpose.
func (h *HIS) FindPatients(user, role, task, caseID, section string) []string {
	h.mu.Lock()
	patients := make([]string, 0, len(h.epr))
	for p := range h.epr {
		patients = append(patients, p)
	}
	h.mu.Unlock()

	var candidates []policy.Object
	for _, p := range patients {
		candidates = append(candidates, policy.Object{Subject: p, Path: []string{"EPR", section}})
	}
	visible := h.pdp.VisibleObjects(policy.AccessRequest{
		User: user, Role: role, Action: "read", Task: task, Case: caseID,
	}, candidates)
	out := make([]string, 0, len(visible))
	for _, o := range visible {
		out = append(out, o.Subject)
	}
	return out
}

// AuditStore exposes the audit database for investigation.
func (h *HIS) AuditStore() *audit.Store { return h.log }

// SealedEntries exposes the integrity-protected log: every recorded
// entry with its chain hash and HMAC seal, verifiable with
// audit.Verify under the construction key.
func (h *HIS) SealedEntries() []audit.SealedEntry { return h.seal.SealedEntries() }

// Ledger exposes the sealing ledger itself — signed batch roots and
// per-case inclusion proofs over the hospital's own audit log.
func (h *HIS) Ledger() *ledger.Ledger { return h.seal }
