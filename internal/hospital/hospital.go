// Package hospital reproduces the paper's running example (Section 2,
// Figures 1–4): the healthcare treatment process, the clinical trial
// process, the sample data protection policy, and the audit trail in
// which the cardiologist Bob legitimately treats Jane and then re-uses
// treatment as the claimed purpose to harvest EPRs for a clinical trial
// (cases HT-10..HT-30) — the infringement preventive mechanisms cannot
// catch and Algorithm 1 does.
package hospital

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/bpmn"
	"repro/internal/core"
	"repro/internal/policy"
)

// Purpose names and case codes.
const (
	TreatmentPurpose = "HealthcareTreatment"
	TreatmentCode    = "HT"
	TrialPurpose     = "ClinicalTrial"
	TrialCode        = "CT"
)

// Treatment builds the Figure 1 healthcare treatment process.
//
// Pools: GP, Cardiologist, Radiologist (the paper's R), MedicalLabTech
// (the paper's TL). Task numbering follows Figure 6 / Figure 4: the
// radiology visit is T10–T12, the lab visit T13–T15.
//
//	GP:            S1 → T01 → G1 → { T02 → T03 → T04 → E1 | T05 → E5 }
//	               T02 may fail, error boundary → T01;  S2 (msg) → T01
//	Cardiologist:  S3 (msg) → T06 → G2 → { T07 → E4 | G3 (OR) → T08, T09 }
//	               T08 → E8 (msg→lab), T09 → E9 (msg→radiology)
//	               J3 (OR join of G3, fed by msg flows E6, E7) → T06
//	MedicalLabTech: S5 (msg) → T13 → T14 → T15 → E6 (msg→J3)
//	Radiologist:   S6 (msg) → T10 → T11 → T12 → E7 (msg→J3)
func Treatment() (*bpmn.Process, error) {
	return bpmn.NewBuilder(TreatmentPurpose).
		Pool("GP").Pool("Cardiologist").Pool("Radiologist").Pool("MedicalLabTech").
		// GP pool.
		Start("S1", "GP").
		MessageStart("S2", "GP").
		Task("T01", "GP", "Access EPR, collect symptoms and specialist reports").
		XOR("G1", "GP").
		FallibleTask("T02", "GP", "Make diagnosis", "T01").
		Task("T03", "GP", "Prescribe medical treatment").
		Task("T04", "GP", "Discharge patient").
		Task("T05", "GP", "Refer to specialist").
		End("E1", "GP").
		MessageEnd("E5", "GP").
		Seq("S1", "T01").Seq("S2", "T01").Seq("T01", "G1").
		Seq("G1", "T02").Seq("T02", "T03", "T04", "E1").
		Seq("G1", "T05").Seq("T05", "E5").
		// Cardiologist pool.
		MessageStart("S3", "Cardiologist").
		Task("T06", "Cardiologist", "Access medical history, examine patient, retrieve results").
		XOR("G2", "Cardiologist").
		Task("T07", "Cardiologist", "Make diagnosis").
		OR("G3", "Cardiologist").
		Task("T08", "Cardiologist", "Order lab tests").
		Task("T09", "Cardiologist", "Order radiology scans").
		OR("J3", "Cardiologist").
		MessageEnd("E4", "Cardiologist").
		MessageEnd("E8", "Cardiologist").
		MessageEnd("E9", "Cardiologist").
		Seq("S3", "T06").Seq("T06", "G2").
		Seq("G2", "T07").Seq("T07", "E4").
		Seq("G2", "G3").Seq("G3", "T08").Seq("G3", "T09").
		Seq("T08", "E8").Seq("T09", "E9").
		Seq("J3", "T06").
		PairOR("G3", "J3").
		// MedicalLabTech pool.
		MessageStart("S5", "MedicalLabTech").
		Task("T13", "MedicalLabTech", "Check EPR for counter-indications").
		Task("T14", "MedicalLabTech", "Perform lab tests").
		Task("T15", "MedicalLabTech", "Export results to HIS").
		MessageEnd("E6", "MedicalLabTech").
		Seq("S5", "T13", "T14", "T15", "E6").
		// Radiologist pool.
		MessageStart("S6", "Radiologist").
		Task("T10", "Radiologist", "Check EPR for counter-indications").
		Task("T11", "Radiologist", "Perform radiology scan").
		Task("T12", "Radiologist", "Export scan to HIS").
		MessageEnd("E7", "Radiologist").
		Seq("S6", "T10", "T11", "T12", "E7").
		// Message flows.
		Msg("E5", "S3"). // GP refers patient to cardiologist
		Msg("E4", "S2"). // cardiologist's diagnosis notifies GP
		Msg("E8", "S5"). // order lab tests
		Msg("E9", "S6"). // order radiology scans
		Msg("E6", "J3"). // lab done
		Msg("E7", "J3"). // radiology done
		Build()
}

// ClinicalTrial builds the Figure 2 clinical trial process: the
// physician-facing part, a linear flow of five tasks.
func ClinicalTrial() (*bpmn.Process, error) {
	return bpmn.NewBuilder(TrialPurpose).
		Pool("Physician").
		Start("S90", "Physician").
		Task("T91", "Physician", "Define eligibility criteria").
		Task("T92", "Physician", "Select candidates from EPRs").
		Task("T93", "Physician", "Obtain informed consent").
		Task("T94", "Physician", "Perform trial, collect measurements").
		Task("T95", "Physician", "Analyze results").
		End("E90", "Physician").
		Seq("S90", "T91", "T92", "T93", "T94", "T95", "E90").
		Build()
}

// Roles builds the role hierarchy of Section 3.2: GP, Cardiologist and
// Radiologist specialize Physician; MedicalLabTech specializes
// MedicalTech.
func Roles() (*policy.RoleHierarchy, error) {
	h := policy.NewRoleHierarchy()
	decls := []struct {
		role    string
		parents []string
	}{
		{"Physician", nil},
		{"MedicalTech", nil},
		{"GP", []string{"Physician"}},
		{"Cardiologist", []string{"Physician"}},
		{"Radiologist", []string{"Physician"}},
		{"MedicalLabTech", []string{"MedicalTech"}},
	}
	for _, d := range decls {
		if err := h.Add(d.role, d.parents...); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// policyText is the Figure 3 policy, extended with the three statements
// the Figure 4 trail exercises but Figure 3 (a "sample") omits: the
// radiologist executing scan software, the lab tech operating lab
// equipment, and the physician writing clinical-trial artifacts.
const policyText = `
# Figure 3, first block: physicians and treatment.
permit Physician read  [*]EPR/Clinical      for HealthcareTreatment
permit Physician write [*]EPR/Clinical      for HealthcareTreatment
permit Physician read  [*]EPR/Demographics  for HealthcareTreatment

# Figure 3, second block: medical technicians.
permit MedicalTech    read  [*]EPR/Clinical           for HealthcareTreatment
permit MedicalTech    read  [*]EPR/Demographics       for HealthcareTreatment
permit MedicalLabTech write [*]EPR/Clinical/Tests     for HealthcareTreatment

# Figure 3, last block: clinical trial, consent-gated ([X]).
permit Physician read [X]EPR for ClinicalTrial

# Extensions required by the Figure 4 trail (documented in DESIGN.md).
permit Physician   execute ScanSoftware  for HealthcareTreatment
permit MedicalTech execute LabEquipment  for HealthcareTreatment
permit Physician   write   ClinicalTrial for ClinicalTrial
permit Physician   read    ClinicalTrial for ClinicalTrial
`

// Policy builds the Figure 3 data protection policy over the Section 3.2
// role hierarchy.
func Policy() (*policy.Policy, error) {
	h, err := Roles()
	if err != nil {
		return nil, err
	}
	pol, err := policy.ParsePolicyString(rolesText(h) + policyText)
	if err != nil {
		return nil, err
	}
	return pol, nil
}

// rolesText renders role declarations for the parser (keeps a single
// source of truth in Roles).
func rolesText(h *policy.RoleHierarchy) string {
	out := ""
	for _, r := range h.Roles() {
		gens := ""
		for _, g := range h.Generalizations(r) {
			if g == r {
				continue
			}
			if gens != "" {
				gens += ", "
			}
			gens += g
		}
		if gens == "" {
			out += "role " + r + "\n"
		} else {
			out += "role " + r + " : " + gens + "\n"
		}
	}
	return out
}

// Consents builds the consent registry of the scenario: Jane explicitly
// did NOT consent to research (Section 2); Alice and David did.
func Consents() *policy.ConsentRegistry {
	c := policy.NewConsentRegistry()
	c.Grant("Alice", TrialPurpose)
	c.Grant("David", TrialPurpose)
	return c
}

// trailRows is Figure 4, row for row (the paper's "···" ellipses elide
// repetitions of the adjacent rows; we include exactly the printed
// ones).
var trailRows = [][4]string{
	// user|role, action, object|task|case, time|status
	{"John|GP", "read", "[Jane]EPR/Clinical|T01|HT-1", "201003121210|success"},
	{"John|GP", "write", "[Jane]EPR/Clinical|T02|HT-1", "201003121212|success"},
	{"John|GP", "cancel", "|T02|HT-1", "201003121216|failure"},
	{"John|GP", "read", "[Jane]EPR/Clinical|T01|HT-1", "201003121218|success"},
	{"John|GP", "write", "[Jane]EPR/Clinical|T05|HT-1", "201003121220|success"},
	{"John|GP", "read", "[David]EPR/Demographics|T01|HT-2", "201003121230|success"},
	{"Bob|Cardiologist", "read", "[Jane]EPR/Clinical|T06|HT-1", "201003141010|success"},
	{"Bob|Cardiologist", "write", "[Jane]EPR/Clinical|T09|HT-1", "201003141025|success"},
	{"Charlie|Radiologist", "read", "[Jane]EPR/Clinical|T10|HT-1", "201003201640|success"},
	{"Charlie|Radiologist", "execute", "ScanSoftware|T11|HT-1", "201003201645|success"},
	{"Charlie|Radiologist", "write", "[Jane]EPR/Clinical/Scan|T12|HT-1", "201003201730|success"},
	{"Bob|Cardiologist", "read", "[Jane]EPR/Clinical|T06|HT-1", "201003301010|success"},
	{"Bob|Cardiologist", "write", "[Jane]EPR/Clinical|T07|HT-1", "201003301020|success"},
	{"John|GP", "read", "[Jane]EPR/Clinical|T01|HT-1", "201004151210|success"},
	{"John|GP", "write", "[Jane]EPR/Clinical|T02|HT-1", "201004151210|success"},
	{"John|GP", "write", "[Jane]EPR/Clinical|T03|HT-1", "201004151215|success"},
	{"John|GP", "write", "[Jane]EPR/Clinical|T04|HT-1", "201004151220|success"},
	{"Bob|Cardiologist", "write", "ClinicalTrial/Criteria|T91|CT-1", "201004151450|success"},
	{"Bob|Cardiologist", "read", "[Alice]EPR/Clinical|T06|HT-10", "201004151500|success"},
	{"Bob|Cardiologist", "read", "[Jane]EPR/Clinical|T06|HT-11", "201004151501|success"},
	{"Bob|Cardiologist", "read", "[David]EPR/Clinical|T06|HT-20", "201004151515|success"},
	{"Bob|Cardiologist", "write", "ClinicalTrial/ListOfSelCand|T92|CT-1", "201004151520|success"},
	{"Bob|Cardiologist", "read", "[Alice]EPR/Demographics|T06|HT-21", "201004151530|success"},
	{"Bob|Cardiologist", "read", "[David]EPR/Demographics|T06|HT-30", "201004151550|success"},
	{"Bob|Cardiologist", "write", "ClinicalTrial/ListOfEnrCand|T93|CT-1", "201004201200|success"},
	{"Bob|Cardiologist", "write", "ClinicalTrial/Measurements|T94|CT-1", "201004221600|success"},
	{"Bob|Cardiologist", "write", "ClinicalTrial/Measurements|T94|CT-1", "201004291600|success"},
	{"Bob|Cardiologist", "write", "ClinicalTrial/Results|T95|CT-1", "201004301200|success"},
}

// Trail builds the Figure 4 audit trail.
func Trail() (*audit.Trail, error) {
	var entries []audit.Entry
	for i, row := range trailRows {
		e, err := rowEntry(row)
		if err != nil {
			return nil, fmt.Errorf("hospital: trail row %d: %w", i, err)
		}
		entries = append(entries, e)
	}
	return audit.NewTrail(entries), nil
}

func rowEntry(row [4]string) (audit.Entry, error) {
	var e audit.Entry
	if _, err := fmt.Sscanf(replacePipes(row[0]), "%s %s", &e.User, &e.Role); err != nil {
		return e, err
	}
	e.Action = row[1]
	var objStr string
	if _, err := fmt.Sscanf(replacePipes(row[2]), "%s %s %s", &objStr, &e.Task, &e.Case); err != nil {
		// Object may be empty (the paper's N/A rows).
		var rest = replacePipes(row[2])
		if _, err2 := fmt.Sscanf(rest, "%s %s", &e.Task, &e.Case); err2 != nil {
			return e, err
		}
		objStr = ""
	}
	if objStr != "" {
		o, err := policy.ParseObject(objStr)
		if err != nil {
			return e, err
		}
		e.Object = o
	}
	var ts, status string
	if _, err := fmt.Sscanf(replacePipes(row[3]), "%s %s", &ts, &status); err != nil {
		return e, err
	}
	t, err := audit.ParsePaperTime(ts)
	if err != nil {
		return e, err
	}
	e.Time = t
	st, err := audit.ParseStatus(status)
	if err != nil {
		return e, err
	}
	e.Status = st
	return e, nil
}

func replacePipes(s string) string {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '|' {
			out[i] = ' '
		} else {
			out[i] = s[i]
		}
	}
	return string(out)
}

// Scenario bundles the fully wired running example.
type Scenario struct {
	Treatment *bpmn.Process
	Trial     *bpmn.Process
	Registry  *core.Registry
	Policy    *policy.Policy
	Consents  *policy.ConsentRegistry
	Framework *core.Framework
	Trail     *audit.Trail
}

// NewScenario assembles processes, registry, policy, consents, framework
// and the Figure 4 trail.
func NewScenario() (*Scenario, error) {
	treatment, err := Treatment()
	if err != nil {
		return nil, fmt.Errorf("hospital: building treatment process: %w", err)
	}
	trial, err := ClinicalTrial()
	if err != nil {
		return nil, fmt.Errorf("hospital: building trial process: %w", err)
	}
	reg := core.NewRegistry()
	if _, err := reg.Register(treatment, TreatmentCode); err != nil {
		return nil, err
	}
	if _, err := reg.Register(trial, TrialCode); err != nil {
		return nil, err
	}
	pol, err := Policy()
	if err != nil {
		return nil, fmt.Errorf("hospital: building policy: %w", err)
	}
	consents := Consents()
	trail, err := Trail()
	if err != nil {
		return nil, err
	}
	return &Scenario{
		Treatment: treatment,
		Trial:     trial,
		Registry:  reg,
		Policy:    pol,
		Consents:  consents,
		Framework: core.NewFramework(reg, pol, consents),
		Trail:     trail,
	}, nil
}
