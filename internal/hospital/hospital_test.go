package hospital

import (
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/encode"
	"repro/internal/lts"
	"repro/internal/policy"
)

func scenario(t *testing.T) *Scenario {
	t.Helper()
	sc, err := NewScenario()
	if err != nil {
		t.Fatalf("NewScenario: %v", err)
	}
	return sc
}

// TestFig1ProcessStructure (experiment F1): the treatment process
// builds, validates, and has the Figure 1 shape.
func TestFig1ProcessStructure(t *testing.T) {
	sc := scenario(t)
	p := sc.Treatment
	st := p.Stats()
	if st.Pools != 4 {
		t.Errorf("pools = %d, want 4", st.Pools)
	}
	if st.Tasks != 15 {
		t.Errorf("tasks = %d, want 15 (T01–T15)", st.Tasks)
	}
	if st.MsgFlows != 6 {
		t.Errorf("message flows = %d, want 6", st.MsgFlows)
	}
	if st.ErrorEdge != 1 {
		t.Errorf("error edges = %d, want 1 (T02)", st.ErrorEdge)
	}
	if got := p.RolesOfTasks(); len(got) != 4 {
		t.Errorf("task roles = %v, want 4", got)
	}
	if p.ORJoin("G3") != "J3" {
		t.Errorf("OR pairing missing")
	}
	if f, ok := p.ORBranchJoinFlow("G3", "T08"); !ok || f.From != "E6" {
		t.Errorf("lab branch routes to %v", f)
	}
	if f, ok := p.ORBranchJoinFlow("G3", "T09"); !ok || f.From != "E7" {
		t.Errorf("radiology branch routes to %v", f)
	}
	// The encoding exists and is non-trivial.
	rep, err := encode.Report(p)
	if err != nil {
		t.Fatalf("encode report: %v", err)
	}
	if rep.TotalSize < 100 {
		t.Errorf("encoding suspiciously small: %d nodes", rep.TotalSize)
	}
}

// TestFig2ProcessStructure (experiment F2).
func TestFig2ProcessStructure(t *testing.T) {
	sc := scenario(t)
	st := sc.Trial.Stats()
	if st.Tasks != 5 || st.Pools != 1 {
		t.Errorf("stats = %+v", st)
	}
	if got := sc.Trial.Tasks(); got[0] != "T91" || got[4] != "T95" {
		t.Errorf("tasks = %v", got)
	}
}

// TestFig3PolicyDecisions (experiment F3): Definition 3 over the
// Figure 3 statements, including role hierarchy, object hierarchy and
// consent.
func TestFig3PolicyDecisions(t *testing.T) {
	sc := scenario(t)
	pdp := sc.Framework.PDP
	obj := policy.MustParseObject

	cases := []struct {
		name string
		req  policy.AccessRequest
		want bool
	}{
		{"GP reads clinical (Physician statement via hierarchy)",
			policy.AccessRequest{User: "John", Role: "GP", Action: "read", Object: obj("[Jane]EPR/Clinical"), Task: "T01", Case: "HT-1"}, true},
		{"Cardiologist writes clinical",
			policy.AccessRequest{User: "Bob", Role: "Cardiologist", Action: "write", Object: obj("[Jane]EPR/Clinical"), Task: "T09", Case: "HT-1"}, true},
		{"Radiologist writes scan subsection (object hierarchy)",
			policy.AccessRequest{User: "Charlie", Role: "Radiologist", Action: "write", Object: obj("[Jane]EPR/Clinical/Scan"), Task: "T12", Case: "HT-1"}, true},
		{"LabTech writes tests subsection",
			policy.AccessRequest{User: "Tess", Role: "MedicalLabTech", Action: "write", Object: obj("[Jane]EPR/Clinical/Tests"), Task: "T15", Case: "HT-1"}, true},
		{"LabTech cannot write whole clinical section",
			policy.AccessRequest{User: "Tess", Role: "MedicalLabTech", Action: "write", Object: obj("[Jane]EPR/Clinical"), Task: "T15", Case: "HT-1"}, false},
		{"LabTech reads clinical via MedicalTech",
			policy.AccessRequest{User: "Tess", Role: "MedicalLabTech", Action: "read", Object: obj("[Jane]EPR/Clinical"), Task: "T13", Case: "HT-1"}, true},
		{"Physician reads consenting patient for trial",
			policy.AccessRequest{User: "Bob", Role: "Cardiologist", Action: "read", Object: obj("[Alice]EPR/Clinical"), Task: "T92", Case: "CT-1"}, true},
		{"Physician cannot read Jane for trial (no consent, Section 2)",
			policy.AccessRequest{User: "Bob", Role: "Cardiologist", Action: "read", Object: obj("[Jane]EPR/Clinical"), Task: "T92", Case: "CT-1"}, false},
		{"Demographics readable for treatment",
			policy.AccessRequest{User: "Bob", Role: "Cardiologist", Action: "read", Object: obj("[Alice]EPR/Demographics"), Task: "T06", Case: "HT-21"}, true},
		{"Task must belong to the claimed purpose's process",
			policy.AccessRequest{User: "Bob", Role: "Cardiologist", Action: "read", Object: obj("[Jane]EPR/Clinical"), Task: "T92", Case: "HT-1"}, false},
		{"MedicalTech cannot write clinical",
			policy.AccessRequest{User: "Mia", Role: "MedicalTech", Action: "write", Object: obj("[Jane]EPR/Clinical"), Task: "T13", Case: "HT-1"}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dec := pdp.Evaluate(c.req)
			if dec.Granted != c.want {
				t.Fatalf("Evaluate(%s) = %v (%s), want %v", c.req, dec.Granted, dec.Reason, c.want)
			}
		})
	}
}

// TestFig3Footnote3Visibility: a clinical-trial query returns only
// consenting patients; the same query under treatment returns all.
func TestFig3Footnote3Visibility(t *testing.T) {
	sc := scenario(t)
	candidates := []policy.Object{
		policy.MustParseObject("[Alice]EPR/Clinical"),
		policy.MustParseObject("[Jane]EPR/Clinical"),
		policy.MustParseObject("[David]EPR/Clinical"),
	}
	trial := sc.Framework.PDP.VisibleObjects(
		policy.AccessRequest{User: "Bob", Role: "Cardiologist", Action: "read", Task: "T92", Case: "CT-1"},
		candidates)
	if len(trial) != 2 { // Alice and David consented; Jane did not
		t.Fatalf("trial visibility = %v", trial)
	}
	treatment := sc.Framework.PDP.VisibleObjects(
		policy.AccessRequest{User: "Bob", Role: "Cardiologist", Action: "read", Task: "T06", Case: "HT-1"},
		candidates)
	if len(treatment) != 3 {
		t.Fatalf("treatment visibility = %v", treatment)
	}
}

// TestFig4Verdicts (experiment F4): the paper's headline result. The
// Figure 4 trail yields: HT-1 compliant and complete; HT-2 compliant but
// pending; CT-1 compliant; HT-10/11/20/21/30 are infringements (the
// cardiologist's re-purposing); and the preventive layer flags nothing.
func TestFig4Verdicts(t *testing.T) {
	sc := scenario(t)
	res, err := sc.Framework.Audit(sc.Trail)
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	if len(res.PolicyFindings) != 0 {
		t.Errorf("preventive layer flagged %d entries; the attack is invisible to it", len(res.PolicyFindings))
		for _, f := range res.PolicyFindings {
			t.Logf("  finding: %s -> %s", f.Entry, f.Reason)
		}
	}
	want := map[string]struct {
		compliant bool
		pending   bool
	}{
		"HT-1":  {true, false},
		"HT-2":  {true, true},
		"CT-1":  {true, false},
		"HT-10": {false, false},
		"HT-11": {false, false},
		"HT-20": {false, false},
		"HT-21": {false, false},
		"HT-30": {false, false},
	}
	if len(res.CaseReports) != len(want) {
		t.Fatalf("got %d case reports, want %d", len(res.CaseReports), len(want))
	}
	for _, rep := range res.CaseReports {
		w, ok := want[rep.Case]
		if !ok {
			t.Errorf("unexpected case %s", rep.Case)
			continue
		}
		if rep.Compliant != w.compliant || rep.Pending != w.pending {
			t.Errorf("case %s: %s (want compliant=%v pending=%v)", rep.Case, rep, w.compliant, w.pending)
		}
	}
	// Exactly the five re-purposing cases are infringements.
	if got := len(res.Infringements()); got != 5 {
		t.Errorf("infringements = %d, want 5", got)
	}
	// The violation diagnostics name the re-purposed task and what the
	// process would have required instead.
	for _, rep := range res.Infringements() {
		if rep.Violation == nil || rep.Violation.Entry.Task != "T06" {
			t.Errorf("case %s: violation = %v", rep.Case, rep.Violation)
			continue
		}
		if len(rep.Violation.Expected) != 1 || rep.Violation.Expected[0] != "GP.T01" {
			t.Errorf("case %s: expected = %v, want [GP.T01]", rep.Case, rep.Violation.Expected)
		}
	}
}

// TestFig4JaneInvestigation: the Section 4 per-object workflow. Jane's
// EPR was accessed in HT-1 (valid treatment) and HT-11 (re-purposing);
// investigating her EPR surfaces exactly the HT-11 infringement.
func TestFig4JaneInvestigation(t *testing.T) {
	sc := scenario(t)
	reports, err := sc.Framework.Checker.CheckObject(sc.Trail, policy.MustParseObject("[Jane]EPR"))
	if err != nil {
		t.Fatal(err)
	}
	byCase := map[string]*core.Report{}
	for _, r := range reports {
		byCase[r.Case] = r
	}
	if len(byCase) != 2 {
		t.Fatalf("cases touching Jane's EPR: %v, want HT-1 and HT-11", byCase)
	}
	if r := byCase["HT-1"]; r == nil || !r.Compliant {
		t.Errorf("HT-1: %v", r)
	}
	if r := byCase["HT-11"]; r == nil || r.Compliant {
		t.Errorf("HT-11: %v", r)
	}
}

// TestFig6Replay (experiment F6): the transition-system walkthrough of
// Figure 6 — active-task sets along the HT-1 replay, the failure
// emptying the active set, the five-way branching after T06, and the
// OR-gateway ambiguity after T09.
func TestFig6Replay(t *testing.T) {
	sc := scenario(t)
	checker := sc.Framework.Checker

	type step struct {
		activeUnion map[string]bool
		configs     int
		nextFirst   int
	}
	var steps []step
	checker.TraceFn = func(i int, e audit.Entry, configs []*core.Configuration) {
		s := step{activeUnion: map[string]bool{}, configs: len(configs)}
		for _, conf := range configs {
			for _, a := range conf.ActiveTasks() {
				s.activeUnion[a.String()] = true
			}
		}
		s.nextFirst = len(configs[0].NextLabels())
		steps = append(steps, s)
	}
	defer func() { checker.TraceFn = nil }()

	rep, err := checker.CheckCase(sc.Trail, "HT-1")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Compliant || !rep.CanComplete {
		t.Fatalf("HT-1: %s", rep)
	}
	if len(steps) != 16 {
		t.Fatalf("replayed %d steps, want 16", len(steps))
	}

	wantActive := []string{
		"GP·T01",           // St2
		"GP·T02",           // St3
		"",                 // St4: failure empties the active set
		"GP·T01",           // back to St2
		"GP·T05",           // St6
		"Cardiologist·T06", // St7
		"Cardiologist·T09", // St10/St11 (our origin discipline: only fired tasks)
		"Radiologist·T10",  // St13/St14
		"Radiologist·T11",  // St15/St16
		"Radiologist·T12",  //
		"Cardiologist·T06", // second visit
		"Cardiologist·T07", //
		"GP·T01",           // notification received
		"GP·T02",           //
		"GP·T03",           //
		"GP·T04",           // St36
	}
	for i, want := range wantActive {
		var got []string
		for a := range steps[i].activeUnion {
			got = append(got, a)
		}
		if want == "" {
			if len(got) != 0 {
				t.Errorf("step %d: active = %v, want empty (suspended process)", i, got)
			}
			continue
		}
		if len(got) != 1 || got[0] != want {
			t.Errorf("step %d: active = %v, want {%s}", i, got, want)
		}
	}

	// After the first T06 (step index 5), the configuration offers the
	// five-way choice of Figure 6's St7: T07, T08 (alone or with T09),
	// T09 (alone or with T08).
	if got := steps[5].nextFirst; got != 3 {
		t.Errorf("distinct next labels after T06 = %d, want 3 (T07, T08, T09)", got)
	}
	// After T09 (step index 6) the algorithm cannot yet distinguish
	// "only scans" from "scans and labs": at least two configurations
	// survive (St10 vs St11).
	if steps[6].configs < 2 {
		t.Errorf("configurations after T09 = %d, want ≥ 2 (St10/St11 ambiguity)", steps[6].configs)
	}
	// By the second T06 (step index 10) the labs-too configurations
	// have died (no lab results ever arrived): the set collapses.
	if steps[10].configs >= steps[6].configs {
		t.Errorf("configurations after second T06 = %d, want fewer than %d", steps[10].configs, steps[6].configs)
	}
}

// TestFig6FiveWaySt7 pins the exact successor structure of Figure 6's
// St7: five (label, state) successors.
func TestFig6FiveWaySt7(t *testing.T) {
	sc := scenario(t)
	pur := sc.Registry.Purpose(TreatmentPurpose)
	y := lts.NewSystem(pur.Observable)

	// Drive the encoded process to St7 via GP.T01, GP.T05, C.T06.
	state := pur.Initial
	for _, want := range []string{"T01", "T05", "T06"} {
		obs, err := y.WeakNext(state)
		if err != nil {
			t.Fatal(err)
		}
		var found bool
		for _, o := range obs {
			if o.Label.Op == want {
				state = o.State
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("label %s not offered; have %v", want, obs)
		}
	}
	obs, err := y.WeakNext(state)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 5 {
		for _, o := range obs {
			t.Logf("  succ: %s", o.Label)
		}
		t.Fatalf("St7 has %d successors, want 5 (Fig. 6)", len(obs))
	}
	counts := map[string]int{}
	for _, o := range obs {
		counts[o.Label.Op]++
	}
	if counts["T07"] != 1 || counts["T08"] != 2 || counts["T09"] != 2 {
		t.Fatalf("St7 successor multiset = %v, want T07:1 T08:2 T09:2", counts)
	}
}

// TestMimicryRequiresCollusion (experiment P8): a single user cannot
// simulate the whole treatment process because its tasks span four
// roles (Section 4's mimicry discussion).
func TestMimicryRequiresCollusion(t *testing.T) {
	sc := scenario(t)
	checker := sc.Framework.Checker
	base := time.Date(2026, 2, 1, 8, 0, 0, 0, time.UTC)
	mk := func(seq int, user, role, task, caseID string, st audit.Status) audit.Entry {
		return audit.Entry{
			User: user, Role: role, Action: "read",
			Object: policy.MustParseObject("[Jane]EPR/Clinical"),
			Task:   task, Case: caseID,
			Time:   base.Add(time.Duration(seq) * time.Minute),
			Status: st,
		}
	}

	// Bob (Cardiologist) tries to fake a full treatment case alone: he
	// cannot perform GP-pool tasks.
	solo := audit.NewTrail([]audit.Entry{
		mk(0, "Bob", "Cardiologist", "T01", "HT-99", audit.Success),
	})
	rep, err := checker.CheckCase(solo, "HT-99")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Compliant {
		t.Fatalf("solo mimicry accepted: %s", rep)
	}
	if !strings.Contains(rep.Violation.Reason, "may not perform") {
		t.Fatalf("reason = %q", rep.Violation.Reason)
	}

	// With a colluding GP the prefix passes — mimicry needs collusion
	// across every role the process involves.
	collusion := audit.NewTrail([]audit.Entry{
		mk(0, "John", "GP", "T01", "HT-98", audit.Success),
		mk(1, "John", "GP", "T05", "HT-98", audit.Success),
		mk(2, "Bob", "Cardiologist", "T06", "HT-98", audit.Success),
	})
	rep, err = checker.CheckCase(collusion, "HT-98")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Compliant || !rep.Pending {
		t.Fatalf("collusion prefix: %s", rep)
	}

	// Reusing a COMPLETED case as cover fails: HT-1 ended with T04, so
	// a later T06 access cannot extend it.
	extended := append(sc.Trail.ByCase("HT-1").Entries(),
		mk(1000, "Bob", "Cardiologist", "T06", "HT-1", audit.Success))
	rep, err = checker.CheckCase(audit.NewTrail(extended), "HT-1")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Compliant {
		t.Fatalf("post-completion access accepted: %s", rep)
	}
	if rep.StepsReplayed != 16 {
		t.Fatalf("deviation at step %d, want 16", rep.StepsReplayed)
	}
}

// TestHT1SoundnessOracle cross-checks Algorithm 1's verdict on HT-1
// against the brute-force trace-acceptance oracle (Theorem 2 on the
// paper's own scenario). The expected labels pin down the complete
// origin chains: each token names the task that produced it.
func TestHT1SoundnessOracle(t *testing.T) {
	sc := scenario(t)
	pur := sc.Registry.Purpose(TreatmentPurpose)
	y := lts.NewSystem(pur.Observable)

	trace := []string{
		"GP.T01(-)",             // S1's initial token carries no origin
		"GP.T02(T01)",           //
		"sys.Err(T02)",          // the cancel failure
		"GP.T01(T02)",           // error boundary routes back to T01
		"GP.T05(T01)",           //
		"Cardiologist.T06(T05)", // referral crossed the message flow
		"Cardiologist.T09(T06)", //
		"Radiologist.T10(T09)",  // order crossed to the radiology pool
		"Radiologist.T11(T10)",  //
		"Radiologist.T12(T11)",  //
		"Cardiologist.T06(T12)", // results notification through J3
		"Cardiologist.T07(T06)", //
		"GP.T01(T07)",           // diagnosis notification through S2
		"GP.T02(T01)",           //
		"GP.T03(T02)",           //
		"GP.T04(T03)",           //
	}
	ok, err := y.AcceptsTrace(pur.Initial, trace)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("oracle rejects HT-1's observable projection")
	}
	// Appending an impossible continuation flips the verdict.
	bogus := append(append([]string(nil), trace...), "Cardiologist.T06(T04)")
	ok, err = y.AcceptsTrace(pur.Initial, bogus)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("oracle accepts post-completion access")
	}
}

// TestTrailSerializationRoundTrip exercises the CSV codec on the
// Figure 4 trail.
func TestTrailSerializationRoundTrip(t *testing.T) {
	sc := scenario(t)
	var b strings.Builder
	if err := audit.WriteCSV(&b, sc.Trail); err != nil {
		t.Fatal(err)
	}
	got, err := audit.ReadCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != sc.Trail.Len() {
		t.Fatalf("round trip %d != %d", got.Len(), sc.Trail.Len())
	}
	// And the verdicts survive the round trip.
	res, err := sc.Framework.Audit(got)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Infringements()) != 5 {
		t.Fatalf("infringements after round trip = %d", len(res.Infringements()))
	}
}

// TestPartialTrailSkips exercises the Section 7 extension on the
// paper's own scenario: HT-1 with the radiologist's counter-indication
// check (T10) missing from the log — a silent activity. Plain
// Algorithm 1 rejects; a skip budget of 1 accepts and names the gap.
func TestPartialTrailSkips(t *testing.T) {
	sc := scenario(t)
	var entries []audit.Entry
	for _, e := range sc.Trail.ByCase("HT-1").Entries() {
		if e.Task == "T10" {
			continue
		}
		entries = append(entries, e)
	}
	partial := audit.NewTrail(entries)
	checker := sc.Framework.Checker

	plain, err := checker.CheckCase(partial, "HT-1")
	if err != nil {
		t.Fatal(err)
	}
	if plain.Compliant {
		t.Fatalf("plain checker accepted the gapped HT-1")
	}
	rep, err := checker.CheckCaseWithSkips(partial, "HT-1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Compliant || rep.SkipsUsed != 1 {
		t.Fatalf("skip replay: %+v", rep)
	}
	if len(rep.SkippedLabels) != 1 || rep.SkippedLabels[0] != "Radiologist.T10" {
		t.Fatalf("skipped = %v, want [Radiologist.T10]", rep.SkippedLabels)
	}
	// The full HT-1 needs no skips even with budget.
	rep, err = checker.CheckCaseWithSkips(sc.Trail, "HT-1", 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Compliant || rep.SkipsUsed != 0 {
		t.Fatalf("full HT-1 with budget: %+v", rep)
	}
}

// TestSeverityOnScenario ranks the Figure 4 infringements: HT-11
// (Jane — no consent) must outrank the consenting patients' cases.
func TestSeverityOnScenario(t *testing.T) {
	sc := scenario(t)
	res, err := sc.Framework.Audit(sc.Trail)
	if err != nil {
		t.Fatal(err)
	}
	scorer := core.NewSeverityScorer(sc.Consents)
	ranked := scorer.Rank(res, sc.Trail)
	if len(ranked) != 5 {
		t.Fatalf("ranked %d, want 5", len(ranked))
	}
	if ranked[0].Report.Case != "HT-11" {
		for _, r := range ranked {
			t.Logf("%s score=%d consent=%d", r.Report.Case, r.Score, r.Consent)
		}
		t.Fatalf("top severity = %s, want HT-11 (Jane withheld consent)", ranked[0].Report.Case)
	}
	if ranked[0].Consent != 30 {
		t.Fatalf("HT-11 consent component = %d", ranked[0].Consent)
	}
}

// TestMonitorSnapshotMidCase snapshots the online monitor in the middle
// of HT-1 — right inside the OR-gateway ambiguity, where multiple
// configurations with in-flight cross-pool tokens are live — and
// verifies the restored monitor finishes the case identically.
func TestMonitorSnapshotMidCase(t *testing.T) {
	sc := scenario(t)
	roles, err := Roles()
	if err != nil {
		t.Fatal(err)
	}
	entries := sc.Trail.ByCase("HT-1").Entries()
	cut := 8 // after R.T10: two configurations, tokens mid-flight

	m1 := core.NewMonitor(core.NewChecker(sc.Registry, roles))
	for _, e := range entries[:cut] {
		if v, err := m1.Feed(e); err != nil || !v.OK {
			t.Fatalf("feed: %+v %v", v, err)
		}
	}
	var buf strings.Builder
	if err := m1.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	m2, err := core.RestoreMonitor(core.NewChecker(sc.Registry, roles), strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range entries[cut:] {
		v, err := m2.Feed(e)
		if err != nil || !v.OK {
			t.Fatalf("post-restore entry %d: %+v %v", cut+i, v, err)
		}
	}
	st, err := m2.Status()
	if err != nil {
		t.Fatal(err)
	}
	if len(st) != 1 || !st[0].CanComplete || st[0].Deviated {
		t.Fatalf("restored case status = %+v", st)
	}
}
