package hospital

import (
	"errors"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/ledger"
	"repro/internal/policy"
)

// fakeClock hands out strictly increasing timestamps.
func fakeClock() func() time.Time {
	t := time.Date(2026, 4, 1, 8, 0, 0, 0, time.UTC)
	return func() time.Time {
		t = t.Add(time.Minute)
		return t
	}
}

func newHIS(t *testing.T) (*Scenario, *HIS) {
	t.Helper()
	sc := scenario(t)
	his := NewHIS(sc.Framework, []byte("his-key"), fakeClock())
	for _, p := range []string{"Jane", "Alice", "David"} {
		his.Admit(p)
	}
	return sc, his
}

func obj(s string) policy.Object { return policy.MustParseObject(s) }

func TestHISEnforcesPolicy(t *testing.T) {
	_, his := newHIS(t)

	// A GP reads and writes clinical data for treatment: permitted.
	if err := his.Write("John", "GP", "T02", "HT-7", obj("[Jane]EPR/Clinical"), "suspected angina"); err != nil {
		t.Fatalf("GP write: %v", err)
	}
	got, err := his.Read("John", "GP", "T01", "HT-7", obj("[Jane]EPR/Clinical"))
	if err != nil {
		t.Fatalf("GP read: %v", err)
	}
	if got != "suspected angina" {
		t.Fatalf("read back %q", got)
	}

	// A lab tech may not write outside the Tests subsection.
	err = his.Write("Tess", "MedicalLabTech", "T15", "HT-7", obj("[Jane]EPR/Clinical"), "x")
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("lab tech write: %v", err)
	}
	if err := his.Write("Tess", "MedicalLabTech", "T15", "HT-7", obj("[Jane]EPR/Clinical/Tests"), "HDL 1.3"); err != nil {
		t.Fatalf("lab tech tests write: %v", err)
	}

	// Reading Jane for the clinical trial is denied (no consent);
	// Alice is fine.
	if _, err := his.Read("Bob", "Cardiologist", "T92", "CT-9", obj("[Jane]EPR/Clinical")); !errors.Is(err, ErrDenied) {
		t.Fatalf("trial read of Jane: %v", err)
	}
	if _, err := his.Read("Bob", "Cardiologist", "T92", "CT-9", obj("[Alice]EPR/Clinical")); err != nil {
		t.Fatalf("trial read of Alice: %v", err)
	}

	// Unknown patient.
	if _, err := his.Read("John", "GP", "T01", "HT-7", obj("[Nobody]EPR/Clinical")); err == nil {
		t.Fatalf("unknown patient accepted")
	}

	// Denied accesses are not logged; permitted ones are.
	trail := his.AuditStore().Trail()
	for i := 0; i < trail.Len(); i++ {
		if trail.At(i).Object.Subject == "Jane" && trail.At(i).Case == "CT-9" {
			t.Fatalf("denied access was logged: %s", trail.At(i))
		}
	}
	if trail.Len() != 4 {
		t.Fatalf("logged %d entries, want 4", trail.Len())
	}
}

func TestHISVisibilityByPurpose(t *testing.T) {
	_, his := newHIS(t)
	trial := his.FindPatients("Bob", "Cardiologist", "T92", "CT-9", "Clinical")
	if len(trial) != 2 {
		t.Fatalf("trial visibility = %v, want Alice and David", trial)
	}
	treatment := his.FindPatients("Bob", "Cardiologist", "T06", "HT-9", "Clinical")
	if len(treatment) != 3 {
		t.Fatalf("treatment visibility = %v", treatment)
	}
}

// TestHISDrivenScenario replays the paper's story through the live
// front end: every access goes through the HIS, and the audit store it
// produced is then investigated with the framework — the full loop the
// paper describes.
func TestHISDrivenScenario(t *testing.T) {
	sc, his := newHIS(t)

	// Jane's legitimate treatment (abridged HT-1: diagnose directly).
	steps := []func() error{
		func() error {
			_, err := his.Read("John", "GP", "T01", "HT-1", obj("[Jane]EPR/Clinical"))
			return err
		},
		func() error {
			return his.Write("John", "GP", "T02", "HT-1", obj("[Jane]EPR/Clinical"), "diagnosis")
		},
		func() error {
			return his.Write("John", "GP", "T03", "HT-1", obj("[Jane]EPR/Clinical"), "prescription")
		},
		func() error {
			return his.Write("John", "GP", "T04", "HT-1", obj("[Jane]EPR/Clinical"), "discharged")
		},
	}
	for i, step := range steps {
		if err := step(); err != nil {
			t.Fatalf("treatment step %d: %v", i, err)
		}
	}

	// Bob harvests EPRs under fake treatment cases (all authorized!).
	for i, patient := range []string{"Alice", "Jane", "David"} {
		caseID := "HT-1" + string(rune('0'+i))
		if _, err := his.Read("Bob", "Cardiologist", "T06", caseID, obj("["+patient+"]EPR/Clinical")); err != nil {
			t.Fatalf("harvest read %s: %v", patient, err)
		}
	}

	// The investigation: replay the HIS's own audit store.
	store := his.AuditStore()
	reports, err := core_CheckAll(sc, store)
	if err != nil {
		t.Fatal(err)
	}
	compliant, infringing := 0, 0
	for _, rep := range reports {
		if rep.Compliant {
			compliant++
		} else {
			infringing++
		}
	}
	if compliant != 1 || infringing != 3 {
		t.Fatalf("verdicts: %d compliant, %d infringing (want 1/3)", compliant, infringing)
	}

	// The sealed log verifies end to end — the ledger's per-leaf seals
	// conform to the SecureLog construction.
	if err := audit.Verify([]byte("his-key"), his.SealedEntries(), store.Len()); err != nil {
		t.Fatalf("seal verification: %v", err)
	}

	// And the same ledger proves case inclusion: Bob's harvest reads
	// anchor to signed roots with only the public key.
	l := his.Ledger()
	proof, err := l.ProveCase("HT-11")
	if err != nil {
		t.Fatalf("ProveCase: %v", err)
	}
	if err := ledger.VerifyCaseProof(l.PublicKey(), proof); err != nil {
		t.Fatalf("HIS ledger proof does not verify: %v", err)
	}
	if len(proof.Entries) != 1 {
		t.Fatalf("HT-11 proof covers %d entries, want 1", len(proof.Entries))
	}
}

// core_CheckAll avoids importing core twice in the test's namespace.
func core_CheckAll(sc *Scenario, store *audit.Store) ([]reportLike, error) {
	trail := store.Trail()
	reports, err := sc.Framework.Checker.CheckTrail(trail)
	if err != nil {
		return nil, err
	}
	out := make([]reportLike, len(reports))
	for i, r := range reports {
		out[i] = reportLike{Case: r.Case, Compliant: r.Compliant}
	}
	return out, nil
}

type reportLike struct {
	Case      string
	Compliant bool
}

func TestHISCancelLogsFailure(t *testing.T) {
	_, his := newHIS(t)
	if err := his.Cancel("John", "GP", "T02", "HT-5"); err != nil {
		t.Fatal(err)
	}
	trail := his.AuditStore().Trail()
	if trail.Len() != 1 || trail.At(0).Status != audit.Failure || trail.At(0).Action != "cancel" {
		t.Fatalf("cancel entry: %v", trail.At(0))
	}
}

func TestHISExecute(t *testing.T) {
	_, his := newHIS(t)
	if err := his.Execute("Charlie", "Radiologist", "T11", "HT-1", "ScanSoftware"); err != nil {
		t.Fatalf("execute: %v", err)
	}
	if err := his.Execute("Tess", "MedicalLabTech", "T14", "HT-1", "ScanSoftware"); !errors.Is(err, ErrDenied) {
		t.Fatalf("lab tech executing scan software: %v", err)
	}
}
